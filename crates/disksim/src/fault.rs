//! Deterministic fault injection for any [`BlockDevice`].
//!
//! [`FaultDisk`] wraps a device and injects failures from a [`FaultPlan`]:
//! a map from *write-op index* (every block written counts as one op,
//! whether it arrives via `write_block` or inside a `write_blocks` run) to
//! a [`WriteFault`]. Because the plan is data and the simulation is fully
//! deterministic, the same plan over the same workload always produces the
//! same post-crash media image — the property crash-point exploration and
//! the determinism property tests rely on.
//!
//! Supported faults:
//!
//! * **Power cut** — op *k* writes only its first `survivors` sectors (a
//!   torn write; `survivors == 0` is a clean cut losing the whole block),
//!   then the device is dead: the op and everything after it fails with
//!   [`DiskError::PowerFailure`]. The media keeps what was acknowledged;
//!   [`FaultDisk::into_inner`] hands it back for recovery/remount.
//! * **Silent corruption** — op *k*'s buffer is deterministically mutated
//!   (seeded) before it reaches the media, and the op still succeeds. This
//!   models a firmware/transfer bug; it exists to exercise checksum and
//!   fsck paths, so corrupted writes are *not* recorded as acknowledged.
//! * **Transient error** — op *k* fails once with [`DiskError::Transient`]
//!   and no side effects; the op index is consumed, so a retry proceeds
//!   normally.
//!
//! The wrapper also journals a content hash of every *acknowledged* write,
//! so a harness can later assert the device's central durability contract:
//! no acknowledged write is ever lost (`acked_blocks`).

use std::collections::{BTreeMap, HashMap};

use obs::{OpKind, TraceEvent, Tracer};

use crate::clock::SimClock;
use crate::device::{BlockDevice, DeviceSnapshot};
use crate::disk::DiskStats;
use crate::error::{DiskError, Result};
use crate::service::ServiceTime;
use crate::SECTOR_BYTES;

/// FNV-1a over a byte slice — the content hash used for the acknowledged-
/// write journal. Exposed so harnesses can hash their own buffers the same
/// way.
pub fn content_hash(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 step, used to derive corruption offsets deterministically.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// What happens to one write op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Power fails during this write: the first `survivors` sectors of the
    /// block reach the media (0 = nothing does), the op returns
    /// [`DiskError::PowerFailure`], and every later op fails the same way.
    PowerCut {
        /// Sectors of the affected block that hit the media before power
        /// died.
        survivors: u32,
    },
    /// The buffer is silently corrupted (seeded, deterministic) before the
    /// write proceeds; the op succeeds.
    Corrupt {
        /// Seed for the deterministic mutation.
        seed: u64,
    },
    /// The op fails once with [`DiskError::Transient`], no side effects.
    Transient,
}

/// A deterministic schedule of write faults, keyed by 1-based write-op
/// index.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: BTreeMap<u64, WriteFault>,
}

impl FaultPlan {
    /// A plan with no faults (useful for reference runs that count ops).
    pub fn none() -> Self {
        Self::default()
    }

    /// Power fails cleanly after `acked` write ops: ops `1..=acked`
    /// succeed, op `acked + 1` (and everything after) fails with nothing
    /// written.
    pub fn power_cut_after(acked: u64) -> Self {
        Self::none().with(acked + 1, WriteFault::PowerCut { survivors: 0 })
    }

    /// Power fails *during* write op `op`: its first `survivors` sectors
    /// reach the media, the rest of the block keeps its old contents.
    pub fn torn_power_cut(op: u64, survivors: u32) -> Self {
        Self::none().with(op, WriteFault::PowerCut { survivors })
    }

    /// Silently corrupt write op `op` (seeded).
    pub fn corrupt_write(op: u64, seed: u64) -> Self {
        Self::none().with(op, WriteFault::Corrupt { seed })
    }

    /// Fail write op `op` once with a transient error.
    pub fn transient(op: u64) -> Self {
        Self::none().with(op, WriteFault::Transient)
    }

    /// Add (or replace) the fault for write op `op`. Builder-style, so
    /// plans compose: `FaultPlan::transient(3).with(9, ...)`.
    pub fn with(mut self, op: u64, fault: WriteFault) -> Self {
        self.events.insert(op, fault);
        self
    }

    /// Does any event fall in the half-open op range `[start, end)`?
    fn intersects(&self, start: u64, end: u64) -> bool {
        self.events.range(start..end).next().is_some()
    }
}

/// Counters for the faults actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultLog {
    /// Power cuts fired (0 or 1).
    pub power_cuts: u64,
    /// Sectors of the cut block that survived (torn write), if any.
    pub torn_sectors: u32,
    /// The block a torn power-cut write landed on (its media contents are
    /// a blend and match no acknowledged write).
    pub torn_block: Option<u64>,
    /// Writes silently corrupted.
    pub corruptions: u64,
    /// Transient failures returned.
    pub transients: u64,
    /// Ops refused because the device was already dead.
    pub refused_after_cut: u64,
}

/// A [`BlockDevice`] adapter that injects failures from a [`FaultPlan`].
pub struct FaultDisk {
    inner: Box<dyn BlockDevice>,
    plan: FaultPlan,
    /// 1-based index of the next write op.
    next_op: u64,
    /// Write ops the caller saw succeed (faulted ops consume an index in
    /// `next_op` but are not acknowledged).
    acked_ops: u64,
    powered_off: bool,
    log: FaultLog,
    /// Block → content hash of its last acknowledged write.
    acked: HashMap<u64, u64>,
    /// Reusable buffer for the corrupt-write path, so repeated injected
    /// corruptions don't allocate per write.
    scratch: Vec<u8>,
    /// Optional event tracer; injected faults are recorded as
    /// [`OpKind::Fault`] events with a zero service-time breakdown.
    tracer: Option<Tracer>,
}

impl FaultDisk {
    /// Wrap `inner`, injecting faults per `plan`.
    pub fn new(inner: Box<dyn BlockDevice>, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            next_op: 1,
            acked_ops: 0,
            powered_off: false,
            log: FaultLog::default(),
            acked: HashMap::new(),
            scratch: Vec::new(),
            tracer: None,
        }
    }

    /// Attach (or detach) an event tracer; each injected fault emits one
    /// [`OpKind::Fault`] event (faults consume no simulated time, so the
    /// breakdown fields are zero and busy-sum invariants are unaffected).
    pub fn set_tracer(&mut self, tracer: Option<Tracer>) {
        self.tracer = tracer;
    }

    fn trace_fault(&self, block: u64, sectors: u32) {
        if let Some(tr) = &self.tracer {
            tr.record(TraceEvent {
                at_ns: self.inner.clock().now(),
                kind: OpKind::Fault,
                scope: 0,
                // Zero-duration fault markers are not causal disk work, so
                // they stay unattributed rather than consulting the span
                // stack of the device below.
                span: 0,
                lba: block,
                sectors,
                cyl: 0,
                track: 0,
                sector: 0,
                seek_cyls: 0,
                overhead_ns: 0,
                seek_ns: 0,
                head_switch_ns: 0,
                rotation_ns: 0,
                transfer_ns: 0,
            });
        }
    }

    /// Write ops acknowledged to the caller so far (reference runs use
    /// this to learn the total op count `W` of a workload; crash runs use
    /// it as the cut point `k`). Faulted ops consume a plan index but do
    /// not count.
    pub fn write_ops(&self) -> u64 {
        self.acked_ops
    }

    /// Has the power cut fired?
    pub fn is_powered_off(&self) -> bool {
        self.powered_off
    }

    /// What faults were actually injected.
    pub fn fault_log(&self) -> FaultLog {
        self.log
    }

    /// Content hashes of every acknowledged write, by block. Corrupted
    /// writes are deliberately excluded (the caller was lied to).
    pub fn acked_blocks(&self) -> &HashMap<u64, u64> {
        &self.acked
    }

    /// Unwrap, handing back the (possibly "powerless") inner device — the
    /// surviving media, for recovery or remounting.
    pub fn into_inner(self) -> Box<dyn BlockDevice> {
        self.inner
    }

    /// Unwrap, handing back everything a crash harness needs in one move:
    /// acknowledged-op count, fault log, the acknowledged-write journal,
    /// and the surviving media. Avoids cloning the journal just to keep it
    /// alive across [`FaultDisk::into_inner`].
    pub fn into_parts(self) -> (u64, FaultLog, HashMap<u64, u64>, Box<dyn BlockDevice>) {
        (self.acked_ops, self.log, self.acked, self.inner)
    }

    fn check_power(&mut self) -> Result<()> {
        if self.powered_off {
            self.log.refused_after_cut += 1;
            return Err(DiskError::PowerFailure);
        }
        Ok(())
    }

    /// One write op through the plan. Factored out so `write_blocks` can
    /// run per-block when a fault falls inside its range.
    fn write_one(&mut self, block: u64, buf: &[u8]) -> Result<ServiceTime> {
        self.check_power()?;
        let op = self.next_op;
        self.next_op += 1;
        match self.plan.events.get(&op).copied() {
            None => {
                let t = self.inner.write_block(block, buf)?;
                self.acked.insert(block, content_hash(buf));
                self.acked_ops += 1;
                Ok(t)
            }
            Some(WriteFault::Transient) => {
                self.log.transients += 1;
                self.trace_fault(block, (buf.len() / SECTOR_BYTES) as u32);
                Err(DiskError::Transient)
            }
            Some(WriteFault::Corrupt { seed }) => {
                let mut state = seed ^ op.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                self.scratch.clear();
                self.scratch.extend_from_slice(buf);
                // Flip a handful of bytes scattered through the block.
                for _ in 0..4 {
                    let r = splitmix64(&mut state);
                    let pos = (r as usize) % self.scratch.len();
                    self.scratch[pos] ^= (r >> 32) as u8 | 1;
                }
                self.log.corruptions += 1;
                self.acked_ops += 1;
                self.trace_fault(block, (buf.len() / SECTOR_BYTES) as u32);
                self.inner.write_block(block, &self.scratch)
                // The op is acknowledged (the caller saw success) but its
                // content hash is deliberately not: the caller was lied to.
            }
            Some(WriteFault::PowerCut { survivors }) => {
                self.powered_off = true;
                self.log.power_cuts += 1;
                let spb = (buf.len() / SECTOR_BYTES) as u32;
                let survivors = survivors.min(spb);
                self.trace_fault(block, survivors);
                if survivors > 0 {
                    // A torn write: blend the new prefix over the block's
                    // old contents, sector-granular, and let that reach the
                    // media before the lights go out.
                    self.log.torn_sectors = survivors;
                    self.log.torn_block = Some(block);
                    let mut old = vec![0u8; buf.len()];
                    self.inner.read_block(block, &mut old)?;
                    let keep = survivors as usize * SECTOR_BYTES;
                    old[..keep].copy_from_slice(&buf[..keep]);
                    self.inner.write_block(block, &old)?;
                }
                Err(DiskError::PowerFailure)
            }
        }
    }
}

impl std::fmt::Debug for FaultDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultDisk")
            .field("plan", &self.plan)
            .field("next_op", &self.next_op)
            .field("powered_off", &self.powered_off)
            .field("log", &self.log)
            .finish_non_exhaustive()
    }
}

impl BlockDevice for FaultDisk {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn clock(&self) -> SimClock {
        self.inner.clock()
    }

    fn read_block(&mut self, block: u64, buf: &mut [u8]) -> Result<ServiceTime> {
        self.check_power()?;
        self.inner.read_block(block, buf)
    }

    fn write_block(&mut self, block: u64, buf: &[u8]) -> Result<ServiceTime> {
        self.write_one(block, buf)
    }

    fn read_blocks(&mut self, start: u64, buf: &mut [u8]) -> Result<ServiceTime> {
        self.check_power()?;
        self.inner.read_blocks(start, buf)
    }

    fn write_blocks(&mut self, start: u64, buf: &[u8]) -> Result<ServiceTime> {
        self.check_power()?;
        let bs = self.block_size();
        if bs == 0 || !buf.len().is_multiple_of(bs) {
            return Err(DiskError::BadBufferLength {
                expected: (buf.len() / bs.max(1) + 1) * bs,
                actual: buf.len(),
            });
        }
        let n = (buf.len() / bs) as u64;
        if !self.plan.intersects(self.next_op, self.next_op + n) {
            // No fault in range: forward the whole run (preserves the
            // device's clustering/timing behaviour) and ack every block.
            let t = self.inner.write_blocks(start, buf)?;
            for (i, chunk) in buf.chunks(bs).enumerate() {
                self.acked.insert(start + i as u64, content_hash(chunk));
            }
            self.next_op += n;
            self.acked_ops += n;
            return Ok(t);
        }
        // A fault lands inside this run: apply it block by block, in
        // ascending order, stopping at the first failure — exactly what a
        // mid-transfer power loss does to a large sequential write.
        let mut total = ServiceTime::ZERO;
        for (i, chunk) in buf.chunks(bs).enumerate() {
            total += self.write_one(start + i as u64, chunk)?;
        }
        Ok(total)
    }

    fn trim(&mut self, block: u64) -> Result<()> {
        self.check_power()?;
        self.inner.trim(block)
    }

    fn idle(&mut self, budget_ns: u64) -> u64 {
        if self.powered_off {
            return 0;
        }
        self.inner.idle(budget_ns)
    }

    fn flush(&mut self) -> Result<ServiceTime> {
        self.check_power()?;
        self.inner.flush()
    }

    fn disk_stats(&self) -> DiskStats {
        self.inner.disk_stats()
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }

    fn self_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn inner_device(&self) -> Option<&dyn BlockDevice> {
        Some(self.inner.as_ref())
    }

    fn spans(&self) -> obs::Spans {
        self.inner.spans()
    }

    fn snapshot(&self) -> Option<Box<dyn DeviceSnapshot>> {
        Some(Box::new(FaultDiskSnapshot {
            inner: self.inner.snapshot()?,
            plan: self.plan.clone(),
            next_op: self.next_op,
            acked_ops: self.acked_ops,
            powered_off: self.powered_off,
            log: self.log,
            acked: self.acked.clone(),
        }))
    }
}

/// Snapshot of a [`FaultDisk`]: the wrapped device's snapshot plus the
/// fault plan's progress (op cursor, power state, acknowledged-write
/// journal). The scratch buffer is working space, not state, and is not
/// captured; the tracer, like every observability handle, is restored
/// detached.
pub struct FaultDiskSnapshot {
    inner: Box<dyn DeviceSnapshot>,
    plan: FaultPlan,
    next_op: u64,
    acked_ops: u64,
    powered_off: bool,
    log: FaultLog,
    acked: HashMap<u64, u64>,
}

impl DeviceSnapshot for FaultDiskSnapshot {
    fn restore(&self) -> Box<dyn BlockDevice> {
        Box::new(FaultDisk {
            inner: self.inner.restore(),
            plan: self.plan.clone(),
            next_op: self.next_op,
            acked_ops: self.acked_ops,
            powered_off: self.powered_off,
            log: self.log,
            acked: self.acked.clone(),
            scratch: Vec::new(),
            tracer: None,
        })
    }

    fn local_events(&self) -> u64 {
        self.inner.local_events()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use crate::device::RegularDisk;
    use crate::spec::DiskSpec;

    const BS: usize = 4096;

    fn dev(plan: FaultPlan) -> FaultDisk {
        let raw = RegularDisk::new(DiskSpec::hp97560_sim(), SimClock::new(), BS);
        FaultDisk::new(Box::new(raw), plan)
    }

    fn block(tag: u8) -> Vec<u8> {
        (0..BS).map(|i| tag ^ (i % 251) as u8).collect()
    }

    #[test]
    fn faultless_plan_is_transparent_and_counts_ops() {
        let mut d = dev(FaultPlan::none());
        for i in 0..5u64 {
            d.write_block(i, &block(i as u8)).unwrap();
        }
        d.write_blocks(10, &[block(9), block(8)].concat()).unwrap();
        assert_eq!(d.write_ops(), 7);
        assert!(!d.is_powered_off());
        let mut r = vec![0u8; BS];
        d.read_block(3, &mut r).unwrap();
        assert_eq!(r, block(3));
        assert_eq!(d.acked_blocks().len(), 7);
        assert_eq!(d.acked_blocks()[&11], content_hash(&block(8)));
    }

    #[test]
    fn clean_power_cut_kills_the_device() {
        let mut d = dev(FaultPlan::power_cut_after(2));
        d.write_block(0, &block(1)).unwrap();
        d.write_block(1, &block(2)).unwrap();
        let err = d.write_block(2, &block(3)).unwrap_err();
        assert_eq!(err, DiskError::PowerFailure);
        assert!(d.is_powered_off());
        // Everything fails now, with no side effects.
        assert_eq!(
            d.write_block(4, &block(4)).unwrap_err(),
            DiskError::PowerFailure
        );
        assert_eq!(
            d.read_block(0, &mut vec![0u8; BS]).unwrap_err(),
            DiskError::PowerFailure
        );
        assert!(d.flush().is_err());
        assert_eq!(d.idle(1_000_000), 0);
        assert!(d.fault_log().refused_after_cut >= 2);
        // The media survives: acked writes are there, the cut one is not.
        let mut raw = d.into_inner();
        let mut r = vec![0u8; BS];
        raw.read_block(1, &mut r).unwrap();
        assert_eq!(r, block(2));
        raw.read_block(2, &mut r).unwrap();
        assert!(r.iter().all(|&b| b == 0), "cut write must not land");
    }

    #[test]
    fn torn_write_keeps_a_sector_prefix() {
        let mut d = dev(FaultPlan::none());
        d.write_block(7, &block(0xAA)).unwrap();
        let mut d = {
            let raw = d.into_inner();
            FaultDisk::new(raw, FaultPlan::torn_power_cut(1, 3))
        };
        assert_eq!(
            d.write_block(7, &block(0x55)).unwrap_err(),
            DiskError::PowerFailure
        );
        assert_eq!(d.fault_log().torn_sectors, 3);
        let mut raw = d.into_inner();
        let mut r = vec![0u8; BS];
        raw.read_block(7, &mut r).unwrap();
        let keep = 3 * SECTOR_BYTES;
        assert_eq!(&r[..keep], &block(0x55)[..keep], "new prefix");
        assert_eq!(&r[keep..], &block(0xAA)[keep..], "old suffix");
    }

    #[test]
    fn power_cut_inside_a_multi_block_run() {
        let mut d = dev(FaultPlan::power_cut_after(2));
        let buf = [block(1), block(2), block(3), block(4)].concat();
        assert!(d.write_blocks(20, &buf).is_err());
        let mut raw = d.into_inner();
        let mut r = vec![0u8; BS];
        raw.read_block(20, &mut r).unwrap();
        assert_eq!(r, block(1));
        raw.read_block(21, &mut r).unwrap();
        assert_eq!(r, block(2));
        raw.read_block(22, &mut r).unwrap();
        assert!(r.iter().all(|&b| b == 0), "block past the cut landed");
    }

    #[test]
    fn transient_error_is_retryable() {
        let mut d = dev(FaultPlan::transient(1));
        assert_eq!(
            d.write_block(0, &block(9)).unwrap_err(),
            DiskError::Transient
        );
        assert!(!d.is_powered_off());
        // The op index was consumed: the retry succeeds.
        d.write_block(0, &block(9)).unwrap();
        let mut r = vec![0u8; BS];
        d.read_block(0, &mut r).unwrap();
        assert_eq!(r, block(9));
        assert_eq!(d.fault_log().transients, 1);
    }

    #[test]
    fn corruption_is_silent_deterministic_and_unacked() {
        let run = || {
            let mut d = dev(FaultPlan::corrupt_write(2, 0xDEAD_BEEF));
            d.write_block(0, &block(1)).unwrap();
            d.write_block(1, &block(2)).unwrap(); // corrupted, still Ok
            let mut r = vec![0u8; BS];
            d.read_block(1, &mut r).unwrap();
            (r, d.fault_log().corruptions, d.acked_blocks().len())
        };
        let (a, corruptions, acked) = run();
        let (b, _, _) = run();
        assert_ne!(a, block(2), "corruption must change the payload");
        assert_eq!(a, b, "same seed, same corruption");
        assert_eq!(corruptions, 1);
        assert_eq!(acked, 1, "corrupted write must not be journalled");
    }

    #[test]
    fn same_plan_same_workload_identical_images() {
        let image = |seed: u64| {
            let mut d = dev(FaultPlan::torn_power_cut(40, 5).with(10, WriteFault::Transient));
            let mut s = seed;
            for _ in 0..1000 {
                let r = splitmix64(&mut s);
                let blk = r % 500;
                if d.write_block(blk, &block(r as u8)).is_err() && d.is_powered_off() {
                    break;
                }
            }
            let raw: RegularDisk = crate::device::downcast_device(d.into_inner());
            let mut img = Vec::new();
            raw.disk().save_image(&mut img).unwrap();
            img
        };
        assert_eq!(image(42), image(42), "determinism");
        assert_ne!(image(42), image(43), "different workloads differ");
    }
}
