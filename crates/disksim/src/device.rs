//! The block-device interface file systems run on, and the classic
//! update-in-place implementation.
//!
//! The paper's experimental platform (its Figure 5) runs each file system on
//! either a "regular" disk or a Virtual Log Disk through the same device
//! driver interface. [`BlockDevice`] is that interface; [`RegularDisk`] is
//! the regular disk (logical blocks map linearly onto sectors and writes
//! update in place). The VLD implementation lives in the `vlog-core` crate.

use crate::clock::SimClock;
use crate::disk::{Disk, DiskSnapshot, DiskStats};
use crate::error::{DiskError, Result};
use crate::service::ServiceTime;
use crate::spec::DiskSpec;
use crate::SECTOR_BYTES;

/// A frozen, independently-restorable copy of a device stack's mutable
/// state.
///
/// Each [`BlockDevice`] implementation owns its snapshot type (wrapping
/// layers hold a boxed snapshot of their inner device, mirroring the live
/// stack), which is why this is a trait rather than an enum: the crates
/// implementing devices above `disksim` (the VLD, the log-structured
/// logical disk) plug in without this crate knowing about them.
///
/// Snapshots are plain data and `Send + Sync`: captured once, they can be
/// restored concurrently from many pool workers, each restore yielding a
/// fully independent live stack (media pages shared copy-on-write with the
/// snapshot and sibling forks). Restored stacks come up with disabled
/// observability handles and a fresh clock at the captured instant.
pub trait DeviceSnapshot: Send + Sync {
    /// Reconstruct an independent live device stack from this snapshot.
    fn restore(&self) -> Box<dyn BlockDevice>;

    /// Simulation events the captured system had consumed at capture time.
    /// A fork credits these to the global event counter
    /// ([`crate::clock::add_events`]) so fork-vs-rebuild event totals match
    /// exactly.
    fn local_events(&self) -> u64;
}

/// A logical block device with simulated timing.
///
/// All data-moving calls return the [`ServiceTime`] the request consumed;
/// the shared clock has already been advanced by that amount when the call
/// returns. Idle time is granted explicitly via [`BlockDevice::idle`], which
/// lets devices with background machinery (compactors, cleaners) use it.
pub trait BlockDevice {
    /// Logical block size in bytes (a multiple of the 512-byte sector).
    fn block_size(&self) -> usize;

    /// Number of addressable logical blocks.
    fn num_blocks(&self) -> u64;

    /// Handle to the simulation clock this device advances.
    fn clock(&self) -> SimClock;

    /// Read one block. `buf` must be exactly `block_size` bytes.
    fn read_block(&mut self, block: u64, buf: &mut [u8]) -> Result<ServiceTime>;

    /// Write one block. `buf` must be exactly `block_size` bytes. The write
    /// is durable when the call returns (no volatile write-back cache).
    fn write_block(&mut self, block: u64, buf: &[u8]) -> Result<ServiceTime>;

    /// Read a contiguous run of blocks. The default issues one command per
    /// block; devices that can batch override this.
    fn read_blocks(&mut self, start: u64, buf: &mut [u8]) -> Result<ServiceTime> {
        let bs = self.block_size();
        check_chunks(bs, buf.len())?;
        let mut total = ServiceTime::ZERO;
        for (i, chunk) in buf.chunks_mut(bs).enumerate() {
            total += self.read_block(start + i as u64, chunk)?;
        }
        Ok(total)
    }

    /// Write a contiguous run of blocks. See [`BlockDevice::read_blocks`].
    fn write_blocks(&mut self, start: u64, buf: &[u8]) -> Result<ServiceTime> {
        let bs = self.block_size();
        check_chunks(bs, buf.len())?;
        let mut total = ServiceTime::ZERO;
        for (i, chunk) in buf.chunks(bs).enumerate() {
            total += self.write_block(start + i as u64, chunk)?;
        }
        Ok(total)
    }

    /// Hint that a block's contents are dead (a delete the layer above has
    /// observed). Logical disks use this to free remapped space; the default
    /// does nothing, mirroring how deletes "are not visible to the device
    /// driver" in the paper.
    fn trim(&mut self, _block: u64) -> Result<()> {
        Ok(())
    }

    /// Grant up to `budget_ns` of idle time. The device may run background
    /// work (compaction, cleaning), advancing the clock as it goes, and
    /// returns the nanoseconds it actually consumed; the caller idles the
    /// clock through the remainder. The default consumes nothing.
    fn idle(&mut self, _budget_ns: u64) -> u64 {
        0
    }

    /// Make all buffered state durable — a "sync" from the layer above.
    /// Write-through devices (the default) have nothing to do; the
    /// log-structured logical disk flushes its partial segment per the
    /// 75 % threshold and writes its checkpoint here.
    fn flush(&mut self) -> Result<ServiceTime> {
        Ok(ServiceTime::ZERO)
    }

    /// Cumulative low-level disk statistics (for Figure 9-style breakdowns).
    fn disk_stats(&self) -> DiskStats;

    /// Downcast support: convert the boxed device into [`std::any::Any`],
    /// so harnesses that build device stacks (`Ufs` over `FaultDisk` over
    /// `RegularDisk`, say) can unwrap them again after a simulated crash.
    /// Every implementation is one line: `self`.
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any>;

    /// Non-consuming downcast support: a borrowed [`std::any::Any`] view of
    /// the device, so audit harnesses can find a layer inside a *mounted*
    /// stack (e.g. the VLD under a fault layer) without dismantling it.
    /// Layers that wrap another device should also expose a borrow of their
    /// inner device so the probe can walk the stack; see
    /// [`probe_device`]. The default opts out.
    fn self_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Borrow the wrapped inner device, for stack-walking probes. `None`
    /// (the default) for bottom devices and layers that do not forward.
    fn inner_device(&self) -> Option<&dyn BlockDevice> {
        None
    }

    /// The causal-span handle the device attributes disk time against
    /// (disabled by default). Wrapping layers forward to their inner
    /// device, so a file system above any stack can clone the one handle
    /// the bottom [`Disk`] stamps events with and open spans on it.
    fn spans(&self) -> obs::Spans {
        obs::Spans::disabled()
    }

    /// Freeze this device stack's complete mutable state, or `None` (the
    /// default) for devices that do not support snapshotting. Wrapping
    /// layers return `None` when their inner device does.
    fn snapshot(&self) -> Option<Box<dyn DeviceSnapshot>> {
        None
    }
}

/// Walk a device stack top-down and return the first layer of concrete type
/// `T`, without consuming anything. Relies on [`BlockDevice::self_any`] and
/// [`BlockDevice::inner_device`]; layers that implement neither are opaque
/// and end the walk.
pub fn probe_device<T: 'static>(top: &dyn BlockDevice) -> Option<&T> {
    let mut dev = top;
    loop {
        if let Some(hit) = dev.self_any().and_then(|a| a.downcast_ref::<T>()) {
            return Some(hit);
        }
        dev = dev.inner_device()?;
    }
}

/// Downcast a boxed device to a concrete type, panicking with a clear
/// message if the stack is not what the caller believed.
pub fn downcast_device<T: 'static>(dev: Box<dyn BlockDevice>) -> T {
    *dev.into_any()
        .downcast::<T>()
        .unwrap_or_else(|_| panic!("device stack mismatch: expected {}", std::any::type_name::<T>()))
}

fn check_chunks(block_size: usize, len: usize) -> Result<()> {
    if !len.is_multiple_of(block_size) {
        return Err(DiskError::BadBufferLength {
            expected: (len / block_size + 1) * block_size,
            actual: len,
        });
    }
    Ok(())
}

/// The classic update-in-place disk: logical block `b` lives permanently at
/// sectors `[b*spb, (b+1)*spb)`.
#[derive(Debug)]
pub struct RegularDisk {
    disk: Disk,
    block_sectors: u32,
    num_blocks: u64,
}

impl RegularDisk {
    /// Wrap a mechanical disk with `block_size`-byte logical blocks.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is not a positive multiple of the sector size
    /// (a configuration error).
    pub fn new(spec: DiskSpec, clock: SimClock, block_size: usize) -> Self {
        assert!(
            block_size > 0 && block_size.is_multiple_of(SECTOR_BYTES),
            "block size must be a multiple of {SECTOR_BYTES}"
        );
        let block_sectors = (block_size / SECTOR_BYTES) as u32;
        let disk = Disk::new(spec, clock);
        let num_blocks = disk.spec().geometry.total_sectors() / block_sectors as u64;
        Self {
            disk,
            block_sectors,
            num_blocks,
        }
    }

    /// Wrap an *existing* mechanical disk (surviving media, e.g. after a
    /// simulated crash) with `block_size`-byte logical blocks.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is not a positive multiple of the sector size
    /// (a configuration error).
    pub fn from_disk(disk: Disk, block_size: usize) -> Self {
        assert!(
            block_size > 0 && block_size.is_multiple_of(SECTOR_BYTES),
            "block size must be a multiple of {SECTOR_BYTES}"
        );
        let block_sectors = (block_size / SECTOR_BYTES) as u32;
        let num_blocks = disk.spec().geometry.total_sectors() / block_sectors as u64;
        Self {
            disk,
            block_sectors,
            num_blocks,
        }
    }

    /// Unwrap, yielding the mechanical disk (for crash-test remounts and
    /// image comparison).
    pub fn into_disk(self) -> Disk {
        self.disk
    }

    /// Access the underlying mechanical disk (for cache policy, stats,
    /// test setup).
    pub fn disk_mut(&mut self) -> &mut Disk {
        &mut self.disk
    }

    /// Read-only view of the underlying disk.
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    fn lba(&self, block: u64) -> Result<u64> {
        if block >= self.num_blocks {
            return Err(DiskError::OutOfRange {
                addr: block,
                limit: self.num_blocks,
            });
        }
        Ok(block * self.block_sectors as u64)
    }
}

impl BlockDevice for RegularDisk {
    fn block_size(&self) -> usize {
        self.block_sectors as usize * SECTOR_BYTES
    }

    fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    fn clock(&self) -> SimClock {
        self.disk.clock()
    }

    fn read_block(&mut self, block: u64, buf: &mut [u8]) -> Result<ServiceTime> {
        check_exact(self.block_size(), buf.len())?;
        let lba = self.lba(block)?;
        self.disk.read_sectors(lba, buf)
    }

    fn write_block(&mut self, block: u64, buf: &[u8]) -> Result<ServiceTime> {
        check_exact(self.block_size(), buf.len())?;
        let lba = self.lba(block)?;
        self.disk.write_sectors(lba, buf)
    }

    fn read_blocks(&mut self, start: u64, buf: &mut [u8]) -> Result<ServiceTime> {
        check_chunks(self.block_size(), buf.len())?;
        let lba = self.lba(start)?;
        let last = start + (buf.len() / self.block_size()) as u64;
        if last > self.num_blocks {
            return Err(DiskError::TruncatedTransfer);
        }
        // One command for the whole physically contiguous run.
        self.disk.read_sectors(lba, buf)
    }

    fn write_blocks(&mut self, start: u64, buf: &[u8]) -> Result<ServiceTime> {
        check_chunks(self.block_size(), buf.len())?;
        let lba = self.lba(start)?;
        let last = start + (buf.len() / self.block_size()) as u64;
        if last > self.num_blocks {
            return Err(DiskError::TruncatedTransfer);
        }
        self.disk.write_sectors(lba, buf)
    }

    fn disk_stats(&self) -> DiskStats {
        self.disk.stats()
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }

    fn spans(&self) -> obs::Spans {
        self.disk.spans().clone()
    }

    fn snapshot(&self) -> Option<Box<dyn DeviceSnapshot>> {
        Some(Box::new(RegularDiskSnapshot {
            disk: self.disk.snapshot(),
            block_sectors: self.block_sectors,
            num_blocks: self.num_blocks,
        }))
    }
}

/// Snapshot of a [`RegularDisk`]: the mechanical disk's state plus the
/// (immutable) logical-block parameters.
#[derive(Debug, Clone)]
pub struct RegularDiskSnapshot {
    disk: DiskSnapshot,
    block_sectors: u32,
    num_blocks: u64,
}

impl DeviceSnapshot for RegularDiskSnapshot {
    fn restore(&self) -> Box<dyn BlockDevice> {
        Box::new(RegularDisk {
            disk: self.disk.restore(),
            block_sectors: self.block_sectors,
            num_blocks: self.num_blocks,
        })
    }

    fn local_events(&self) -> u64 {
        self.disk.local_events()
    }
}

fn check_exact(block_size: usize, len: usize) -> Result<()> {
    if len != block_size {
        return Err(DiskError::BadBufferLength {
            expected: block_size,
            actual: len,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> RegularDisk {
        RegularDisk::new(DiskSpec::hp97560_sim(), SimClock::new(), 4096)
    }

    #[test]
    fn geometry_derived_block_count() {
        let d = dev();
        // 36 cyl * 19 tracks * 72 sectors / 8 sectors-per-block
        assert_eq!(d.num_blocks(), 36 * 19 * 72 / 8);
        assert_eq!(d.block_size(), 4096);
    }

    #[test]
    fn block_round_trip() {
        let mut d = dev();
        let w = vec![0x5au8; 4096];
        d.write_block(10, &w).unwrap();
        let mut r = vec![0u8; 4096];
        d.read_block(10, &mut r).unwrap();
        assert_eq!(w, r);
    }

    #[test]
    fn multi_block_ops_are_single_commands() {
        let mut d = dev();
        let w = vec![1u8; 4096 * 4];
        let st = d.write_blocks(0, &w).unwrap();
        assert_eq!(st.overhead_ns, d.disk().spec().command_overhead_ns);
        let mut r = vec![0u8; 4096 * 4];
        let st = d.read_blocks(0, &mut r).unwrap();
        assert_eq!(st.overhead_ns, d.disk().spec().command_overhead_ns);
        assert_eq!(w, r);
    }

    #[test]
    fn bad_lengths_rejected() {
        let mut d = dev();
        assert!(d.write_block(0, &[0u8; 512]).is_err());
        assert!(d.read_block(0, &mut [0u8; 8192]).is_err());
        assert!(d.read_blocks(0, &mut [0u8; 1000]).is_err());
    }

    #[test]
    fn out_of_range_rejected() {
        let mut d = dev();
        let n = d.num_blocks();
        assert!(d.write_block(n, &vec![0u8; 4096]).is_err());
        assert!(d.write_blocks(n - 1, &vec![0u8; 8192]).is_err());
    }

    #[test]
    fn default_idle_consumes_nothing() {
        let mut d = dev();
        assert_eq!(d.idle(1_000_000), 0);
    }

    #[test]
    fn trim_is_a_noop_by_default() {
        let mut d = dev();
        d.write_block(3, &vec![9u8; 4096]).unwrap();
        d.trim(3).unwrap();
        let mut r = vec![0u8; 4096];
        d.read_block(3, &mut r).unwrap();
        assert!(r.iter().all(|&b| b == 9));
    }

    #[test]
    fn update_in_place_pays_rotation() {
        // Repeatedly rewriting the same block costs about a full revolution
        // each time — the fundamental update-in-place penalty the paper
        // eager-writes around.
        let mut d = dev();
        let buf = vec![0u8; 4096];
        d.write_block(5, &buf).unwrap();
        let st = d.write_block(5, &buf).unwrap();
        let rev = d.disk().spec().mech.revolution_ns();
        assert!(
            st.rotation_ns > rev / 2,
            "rewrite rotation {:?} < half rev",
            st.rotation_ns
        );
    }
}
