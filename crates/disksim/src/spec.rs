//! Concrete disk specifications — the paper's Table 1.
//!
//! Two drives anchor the evaluation:
//!
//! | Parameter              | HP97560 | Seagate ST19101 |
//! |------------------------|---------|-----------------|
//! | Sectors per track (n)  | 72      | 256             |
//! | Tracks per cylinder (t)| 19      | 16              |
//! | Head switch (s)        | 2.5 ms  | 0.5 ms          |
//! | Minimum seek           | 3.6 ms  | 0.5 ms          |
//! | Rotation speed         | 4002 RPM| 10000 RPM       |
//! | SCSI overhead (o)      | 2.3 ms  | 0.1 ms          |
//!
//! The HP seek curve is the published Ruemmler & Wilkes fit used by the
//! Dartmouth simulator; the Seagate curve is fitted to the drive's
//! single-cylinder (0.5 ms), average (~5.4 ms) and full-stroke (~10.5 ms)
//! seeks, matching the paper's "coarse approximation" approach.
//!
//! Like the paper — which could only fit 36 HP cylinders or 11 Seagate
//! cylinders in its 24 MB kernel ramdisk — the `*_sim` constructors build
//! small disks for experiments, and the `*_full` constructors build the
//! whole drive.

use crate::geometry::Geometry;
use crate::mech::MechModel;

/// Everything needed to instantiate a simulated disk: geometry, mechanics
/// and per-command processing overhead.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskSpec {
    /// Human-readable model name.
    pub name: &'static str,
    /// Platter layout.
    pub geometry: Geometry,
    /// Mechanical timing model.
    pub mech: MechModel,
    /// Per-command controller/SCSI processing overhead, nanoseconds
    /// (the paper's parameter *o*).
    pub command_overhead_ns: u64,
    /// Track skew in sectors: the angular offset added per track so that a
    /// head switch during a sequential transfer lands just ahead of the
    /// next sector instead of a full revolution behind it.
    pub track_skew: u32,
    /// Cylinder skew in sectors, covering a single-cylinder seek.
    pub cyl_skew: u32,
}

impl DiskSpec {
    fn hp_mech() -> MechModel {
        MechModel {
            rpm: 4002,
            head_switch_ns: crate::ms_to_ns(2.5),
            seek_a_ms: 3.24,
            seek_b_ms: 0.4,
            seek_threshold: 383,
            seek_c_ms: 8.0,
            seek_e_ms: 0.008,
        }
    }

    fn seagate_mech() -> MechModel {
        MechModel {
            rpm: 10_000,
            head_switch_ns: crate::ms_to_ns(0.5),
            seek_a_ms: 0.37,
            seek_b_ms: 0.13,
            seek_threshold: 3000,
            seek_c_ms: 0.74,
            seek_e_ms: 0.00225,
        }
    }

    /// The HP97560 restricted to `cylinders` cylinders.
    pub fn hp97560(cylinders: u32) -> Self {
        Self {
            name: "HP97560",
            geometry: Geometry::uniform(cylinders, 19, 72),
            mech: Self::hp_mech(),
            command_overhead_ns: crate::ms_to_ns(2.3),
            // 2.5 ms head switch is ~12 of 72 sectors at 4002 RPM;
            // 3.6 ms minimum seek is ~18 sectors.
            track_skew: 13,
            cyl_skew: 18,
        }
    }

    /// The 36-cylinder HP97560 slice the paper simulated (≈25 MB).
    pub fn hp97560_sim() -> Self {
        Self::hp97560(36)
    }

    /// The full 1.3 GB HP97560.
    pub fn hp97560_full() -> Self {
        Self::hp97560(1962)
    }

    /// The Seagate ST19101 restricted to `cylinders` cylinders.
    pub fn st19101(cylinders: u32) -> Self {
        Self {
            name: "ST19101",
            geometry: Geometry::uniform(cylinders, 16, 256),
            mech: Self::seagate_mech(),
            command_overhead_ns: crate::ms_to_ns(0.1),
            // 0.5 ms is ~21.3 of 256 sectors at 10000 RPM for both the head
            // switch and the minimum seek.
            track_skew: 22,
            cyl_skew: 22,
        }
    }

    /// The 11-cylinder ST19101 slice the paper simulated (≈23 MB).
    pub fn st19101_sim() -> Self {
        Self::st19101(11)
    }

    /// A full-size (≈9.1 GB) single-zone ST19101 approximation.
    pub fn st19101_full() -> Self {
        Self::st19101(4340)
    }

    /// Half-rotation time — the paper's rule-of-thumb penalty an
    /// update-in-place system cannot avoid.
    pub fn half_rotation_ns(&self) -> u64 {
        self.mech.revolution_ns() / 2
    }

    /// Average number of sectors per track across all zones (exact for the
    /// single-zone paper configurations).
    pub fn sectors_per_track_avg(&self) -> f64 {
        let tracks = self.geometry.tracks_per_cylinder() as u64;
        let total_tracks: u64 = self
            .geometry
            .zones()
            .iter()
            .map(|z| z.cylinders as u64 * tracks)
            .sum();
        self.geometry.total_sectors() as f64 / total_tracks as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_hp_parameters() {
        let d = DiskSpec::hp97560_sim();
        assert_eq!(d.geometry.sectors_per_track(0).unwrap(), 72);
        assert_eq!(d.geometry.tracks_per_cylinder(), 19);
        assert_eq!(d.mech.head_switch_ns, 2_500_000);
        assert_eq!(d.mech.rpm, 4002);
        assert_eq!(d.command_overhead_ns, 2_300_000);
        // Minimum seek ≈ 3.6 ms per Table 1.
        let min_seek_ms = crate::ns_to_ms(d.mech.seek_ns(1));
        assert!((min_seek_ms - 3.6).abs() < 0.1, "min seek {min_seek_ms} ms");
        // Half rotation ≈ 7.5 ms (the paper quotes ~7 ms).
        assert!((crate::ns_to_ms(d.half_rotation_ns()) - 7.497).abs() < 0.01);
    }

    #[test]
    fn table1_seagate_parameters() {
        let d = DiskSpec::st19101_sim();
        assert_eq!(d.geometry.sectors_per_track(0).unwrap(), 256);
        assert_eq!(d.geometry.tracks_per_cylinder(), 16);
        assert_eq!(d.mech.head_switch_ns, 500_000);
        assert_eq!(d.mech.rpm, 10_000);
        assert_eq!(d.command_overhead_ns, 100_000);
        let min_seek_ms = crate::ns_to_ms(d.mech.seek_ns(1));
        assert!(
            (min_seek_ms - 0.5).abs() < 0.05,
            "min seek {min_seek_ms} ms"
        );
        // Half rotation = 3 ms exactly at 10k RPM.
        assert_eq!(d.half_rotation_ns(), 3_000_000);
    }

    #[test]
    fn sim_slices_match_paper_ramdisk() {
        // ~24 MB of kernel memory in the paper.
        let hp = DiskSpec::hp97560_sim().geometry.capacity_bytes();
        let st = DiskSpec::st19101_sim().geometry.capacity_bytes();
        assert!((23..27).contains(&(hp >> 20)), "hp {} MiB", hp >> 20);
        assert!((21..25).contains(&(st >> 20)), "st {} MiB", st >> 20);
    }

    #[test]
    fn full_disks_have_plausible_capacity() {
        assert!(DiskSpec::hp97560_full().geometry.capacity_bytes() > 1_200 << 20);
        assert!(DiskSpec::st19101_full().geometry.capacity_bytes() > 8_500 << 20);
    }

    #[test]
    fn seagate_seek_curve_plausible() {
        let m = DiskSpec::st19101_full().mech;
        let avg = crate::ns_to_ms(m.seek_ns(4340 / 3));
        assert!((4.5..6.5).contains(&avg), "avg seek {avg} ms");
        let full = crate::ns_to_ms(m.seek_ns(4339));
        assert!((9.0..12.0).contains(&full), "full-stroke {full} ms");
    }

    #[test]
    fn sectors_per_track_avg_single_zone() {
        assert_eq!(DiskSpec::hp97560_sim().sectors_per_track_avg(), 72.0);
    }
}
