//! The drive's track read-ahead buffer.
//!
//! The Dartmouth model the paper ported keeps, while reading, "only the
//! sectors from the beginning of the current request through the current
//! read-ahead point and discards the data whose addresses are lower than
//! that of the current request" — sensible when physical addresses of
//! sequential data increase monotonically, but wrong for a VLD, where
//! logical-to-physical translation scrambles the order. The paper's fix is
//! to "aggressively prefetch the entire track as soon as the head reaches
//! the target track and not discard data until it is delivered".
//!
//! [`TrackCache`] models both behaviours:
//!
//! * [`CachePolicy::Conservative`] — after a media read of sectors
//!   `[s, s+c)` the buffer holds `[s, end-of-track)`; a later request below
//!   `s` on the same track misses.
//! * [`CachePolicy::AggressiveTrack`] — the whole track is buffered and
//!   retained until the head moves to a different track for a *write* (reads
//!   of other tracks replace the buffer, but a buffered track survives
//!   re-reads in any order).
//! * [`CachePolicy::Off`] — every read goes to the media.
//!
//! Writes invalidate any buffered copy of the written track (the simulated
//! drive does not write-cache; the paper's systems rely on writes reaching
//! the platter).

/// Read-ahead buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePolicy {
    /// No read-ahead buffering at all.
    Off,
    /// The stock Dartmouth behaviour (good for monotonic physical reads).
    Conservative,
    /// The paper's VLD modification: buffer and retain the whole track.
    AggressiveTrack,
}

/// State of the single-track read-ahead buffer.
#[derive(Debug, Clone)]
pub struct TrackCache {
    policy: CachePolicy,
    /// The (cylinder, track) currently buffered, if any.
    loc: Option<(u32, u32)>,
    /// First buffered sector (inclusive).
    lo: u32,
    /// One past the last buffered sector.
    hi: u32,
    hits: u64,
    misses: u64,
}

impl TrackCache {
    /// Create an empty buffer with the given policy.
    pub fn new(policy: CachePolicy) -> Self {
        Self {
            policy,
            loc: None,
            lo: 0,
            hi: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// Change the policy, dropping any buffered data.
    pub fn set_policy(&mut self, policy: CachePolicy) {
        self.policy = policy;
        self.invalidate_all();
    }

    /// (hits, misses) counters for diagnostics.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Would a read of `[sector, sector+count)` on (cyl, track) be served
    /// from the buffer? Records a hit/miss in the counters.
    pub fn lookup(&mut self, cyl: u32, track: u32, sector: u32, count: u32) -> bool {
        let hit = self.policy != CachePolicy::Off
            && self.loc == Some((cyl, track))
            && sector >= self.lo
            && sector + count <= self.hi;
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        hit
    }

    /// Record that the media was read at `[sector, sector+count)` on
    /// (cyl, track) of a track holding `sectors_per_track` sectors, and
    /// update the buffer per the policy.
    pub fn on_media_read(
        &mut self,
        cyl: u32,
        track: u32,
        sector: u32,
        _count: u32,
        sectors_per_track: u32,
    ) {
        match self.policy {
            CachePolicy::Off => {}
            CachePolicy::Conservative => {
                // Buffer from the request start through the end of the track;
                // anything below the request start is discarded.
                self.loc = Some((cyl, track));
                self.lo = sector;
                self.hi = sectors_per_track;
            }
            CachePolicy::AggressiveTrack => {
                // Prefetch the whole track on arrival.
                self.loc = Some((cyl, track));
                self.lo = 0;
                self.hi = sectors_per_track;
            }
        }
    }

    /// A write landed on (cyl, track): drop any buffered copy of it.
    pub fn on_write(&mut self, cyl: u32, track: u32) {
        if self.loc == Some((cyl, track)) {
            self.invalidate_all();
        }
    }

    /// Drop everything.
    pub fn invalidate_all(&mut self) {
        self.loc = None;
        self.lo = 0;
        self.hi = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_policy_never_hits() {
        let mut c = TrackCache::new(CachePolicy::Off);
        c.on_media_read(0, 0, 0, 8, 64);
        assert!(!c.lookup(0, 0, 0, 8));
    }

    #[test]
    fn conservative_discards_below_request() {
        let mut c = TrackCache::new(CachePolicy::Conservative);
        c.on_media_read(1, 2, 16, 8, 64);
        // Ahead of the request start: buffered through end of track.
        assert!(c.lookup(1, 2, 16, 8));
        assert!(c.lookup(1, 2, 40, 24));
        // Below the request start: discarded.
        assert!(!c.lookup(1, 2, 8, 8));
        // Different track: miss.
        assert!(!c.lookup(1, 3, 16, 8));
    }

    #[test]
    fn aggressive_buffers_whole_track() {
        let mut c = TrackCache::new(CachePolicy::AggressiveTrack);
        c.on_media_read(0, 0, 32, 8, 64);
        assert!(
            c.lookup(0, 0, 0, 8),
            "sectors below the request stay buffered"
        );
        assert!(c.lookup(0, 0, 56, 8));
        assert!(!c.lookup(0, 0, 60, 8), "range crossing track end misses");
    }

    #[test]
    fn write_invalidates_only_that_track() {
        let mut c = TrackCache::new(CachePolicy::AggressiveTrack);
        c.on_media_read(0, 0, 0, 8, 64);
        c.on_write(0, 1); // other track — no effect
        assert!(c.lookup(0, 0, 0, 8));
        c.on_write(0, 0);
        assert!(!c.lookup(0, 0, 0, 8));
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let mut c = TrackCache::new(CachePolicy::AggressiveTrack);
        assert!(!c.lookup(0, 0, 0, 1));
        c.on_media_read(0, 0, 0, 1, 8);
        assert!(c.lookup(0, 0, 3, 1));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn set_policy_invalidates() {
        let mut c = TrackCache::new(CachePolicy::AggressiveTrack);
        c.on_media_read(0, 0, 0, 8, 64);
        c.set_policy(CachePolicy::Conservative);
        assert!(!c.lookup(0, 0, 0, 8));
    }
}
