//! Disk request scheduling (queue sorting).
//!
//! The paper's regular-disk simulator "does not implement disk queue
//! sorting", but the file system above it sorts asynchronous flushes — and
//! §5.2 argues that queue sorting is a *best case* for update-in-place
//! that eager writing beats anyway ("disk queue sorting is likely to be
//! even less effective when the disk queue length is short compared to the
//! working set size"). This module provides the classic schedulers so that
//! claim can be measured:
//!
//! * [`SchedPolicy::Fcfs`] — first come, first served;
//! * [`SchedPolicy::Sstf`] — shortest seek time first (greedy by cylinder
//!   distance, then rotation);
//! * [`SchedPolicy::Elevator`] — one-directional LBA sweep (C-SCAN), what a
//!   sorted flush queue approximates.

use crate::disk::Disk;
use crate::error::Result;
use crate::service::ServiceTime;

/// Queue-ordering policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Service in arrival order.
    Fcfs,
    /// Greedy: always the request with the smallest positioning cost from
    /// the current head position.
    Sstf,
    /// C-SCAN over logical block addresses.
    Elevator,
}

/// Plan a service order over `requests` (each an `(lba, sectors)` pair)
/// for the given policy and current disk state. Returns indices into
/// `requests`.
pub fn plan(disk: &Disk, requests: &[(u64, u32)], policy: SchedPolicy) -> Vec<usize> {
    match policy {
        SchedPolicy::Fcfs => (0..requests.len()).collect(),
        SchedPolicy::Elevator => {
            let mut order: Vec<usize> = (0..requests.len()).collect();
            order.sort_by_key(|&i| requests[i].0);
            // Start the sweep at the first request at or past the head.
            let head_lba = head_lba(disk);
            let split = order
                .iter()
                .position(|&i| requests[i].0 >= head_lba)
                .unwrap_or(0);
            order.rotate_left(split);
            order
        }
        SchedPolicy::Sstf => {
            // Greedy simulation: repeatedly pick the cheapest next request.
            // Positioning costs are estimated against a moving virtual head
            // (cylinder distance first, rotation as tie-break via the
            // mechanical preview from the *initial* state — an
            // approximation adequate for ordering).
            let g = &disk.spec().geometry;
            let mut remaining: Vec<usize> = (0..requests.len()).collect();
            let mut order = Vec::with_capacity(requests.len());
            let mut cur_cyl = disk.head().cyl;
            while !remaining.is_empty() {
                let (pos, &idx) = remaining
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &i)| {
                        let p = g
                            .lba_to_phys(requests[i].0)
                            .expect("planned request in range");
                        (p.cyl.abs_diff(cur_cyl), p.track, p.sector)
                    })
                    .expect("remaining is non-empty");
                let p = g.lba_to_phys(requests[idx].0).expect("in range");
                cur_cyl = p.cyl;
                order.push(idx);
                remaining.remove(pos);
            }
            order
        }
    }
}

fn head_lba(disk: &Disk) -> u64 {
    let h = disk.head();
    disk.spec()
        .geometry
        .phys_to_lba(crate::geometry::PhysAddr {
            cyl: h.cyl,
            track: h.track,
            sector: 0,
        })
        .unwrap_or(0)
}

/// Execute a batch of writes in the planned order, returning the summed
/// service time. `data` supplies one buffer per request.
pub fn service_writes(
    disk: &mut Disk,
    requests: &[(u64, u32)],
    data: &[&[u8]],
    policy: SchedPolicy,
) -> Result<ServiceTime> {
    let order = plan(disk, requests, policy);
    let mut total = ServiceTime::ZERO;
    for i in order {
        total += disk.write_sectors(requests[i].0, data[i])?;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use crate::spec::DiskSpec;
    use crate::SECTOR_BYTES;

    fn random_batch(n: usize, seed: u64, total: u64) -> Vec<(u64, u32)> {
        let mut x = seed;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (((x >> 16) % (total / 8)) * 8, 8u32)
            })
            .collect()
    }

    fn run_policy(policy: SchedPolicy, batch: &[(u64, u32)]) -> u64 {
        let mut disk = Disk::new(DiskSpec::hp97560_sim(), SimClock::new());
        let buf = vec![0u8; 8 * SECTOR_BYTES];
        let data: Vec<&[u8]> = batch.iter().map(|_| buf.as_slice()).collect();
        service_writes(&mut disk, batch, &data, policy)
            .expect("in range")
            .total_ns()
    }

    #[test]
    fn plans_are_permutations() {
        let disk = Disk::new(DiskSpec::hp97560_sim(), SimClock::new());
        let total = disk.spec().geometry.total_sectors();
        let batch = random_batch(40, 9, total);
        for policy in [SchedPolicy::Fcfs, SchedPolicy::Sstf, SchedPolicy::Elevator] {
            let mut order = plan(&disk, &batch, policy);
            order.sort_unstable();
            assert_eq!(order, (0..batch.len()).collect::<Vec<_>>(), "{policy:?}");
        }
    }

    #[test]
    fn sorting_beats_fcfs_on_random_batches() {
        let total = DiskSpec::hp97560_sim().geometry.total_sectors();
        let batch = random_batch(64, 42, total);
        let fcfs = run_policy(SchedPolicy::Fcfs, &batch);
        let sstf = run_policy(SchedPolicy::Sstf, &batch);
        let elev = run_policy(SchedPolicy::Elevator, &batch);
        assert!(sstf < fcfs, "SSTF {sstf} must beat FCFS {fcfs}");
        assert!(elev < fcfs, "elevator {elev} must beat FCFS {fcfs}");
    }

    #[test]
    fn elevator_is_monotone_from_head() {
        let mut disk = Disk::new(DiskSpec::hp97560_sim(), SimClock::new());
        disk.seek_to(20, 0).unwrap();
        let total = disk.spec().geometry.total_sectors();
        let batch = random_batch(30, 7, total);
        let order = plan(&disk, &batch, SchedPolicy::Elevator);
        let lbas: Vec<u64> = order.iter().map(|&i| batch[i].0).collect();
        // One wrap at most: strictly ascending, then ascending again.
        let wraps = lbas.windows(2).filter(|w| w[1] < w[0]).count();
        assert!(wraps <= 1, "elevator wrapped {wraps} times: {lbas:?}");
    }

    #[test]
    fn empty_and_single_batches() {
        let mut disk = Disk::new(DiskSpec::st19101_sim(), SimClock::new());
        assert!(plan(&disk, &[], SchedPolicy::Sstf).is_empty());
        let one = vec![(8u64, 8u32)];
        assert_eq!(plan(&disk, &one, SchedPolicy::Elevator), vec![0]);
        let buf = vec![0u8; 8 * SECTOR_BYTES];
        let t = service_writes(&mut disk, &one, &[buf.as_slice()], SchedPolicy::Fcfs)
            .expect("in range");
        assert!(t.total_ns() > 0);
    }

    #[test]
    fn queue_sorting_still_loses_to_eager_writing() {
        // The paper's §5.2 point: even perfectly sorted update-in-place
        // writes cannot approach eager writing. Compare the best scheduler
        // against a half-rotation-free budget.
        let total = DiskSpec::hp97560_sim().geometry.total_sectors();
        let batch = random_batch(64, 5, total);
        let best =
            run_policy(SchedPolicy::Sstf, &batch).min(run_policy(SchedPolicy::Elevator, &batch));
        let per_write_ms = crate::ns_to_ms(best) / batch.len() as f64;
        // Sorted update-in-place still averages several ms per write on
        // this disk; eager writing's Figure 1 bound at these utilisations
        // is well under 1 ms.
        assert!(
            per_write_ms > 2.0,
            "sorted writes cost {per_write_ms} ms each"
        );
    }
}
