//! Disk request scheduling (queue sorting).
//!
//! The paper's regular-disk simulator "does not implement disk queue
//! sorting", but the file system above it sorts asynchronous flushes — and
//! §5.2 argues that queue sorting is a *best case* for update-in-place
//! that eager writing beats anyway ("disk queue sorting is likely to be
//! even less effective when the disk queue length is short compared to the
//! working set size"). This module provides the classic schedulers so that
//! claim can be measured:
//!
//! * [`SchedPolicy::Fcfs`] — first come, first served;
//! * [`SchedPolicy::Sstf`] — shortest seek time first (greedy by cylinder
//!   distance, then rotation);
//! * [`SchedPolicy::Elevator`] — one-directional LBA sweep (C-SCAN), what a
//!   sorted flush queue approximates.

use crate::disk::Disk;
use crate::error::Result;
use crate::service::ServiceTime;

/// Queue-ordering policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Service in arrival order.
    Fcfs,
    /// Greedy: always the request with the smallest positioning cost from
    /// the current head position.
    Sstf,
    /// C-SCAN over logical block addresses.
    Elevator,
}

/// Plan a service order over `requests` (each an `(lba, sectors)` pair)
/// for the given policy and current disk state. Returns indices into
/// `requests`.
pub fn plan(disk: &Disk, requests: &[(u64, u32)], policy: SchedPolicy) -> Vec<usize> {
    match policy {
        SchedPolicy::Fcfs => (0..requests.len()).collect(),
        SchedPolicy::Elevator => {
            let mut order: Vec<usize> = (0..requests.len()).collect();
            order.sort_by_key(|&i| requests[i].0);
            // Start the sweep at the first request at or past the head.
            let head_lba = head_lba(disk);
            let split = order
                .iter()
                .position(|&i| requests[i].0 >= head_lba)
                .unwrap_or(0);
            order.rotate_left(split);
            order
        }
        SchedPolicy::Sstf => {
            // Greedy simulation: repeatedly pick the cheapest next request.
            // Positioning costs are estimated against a moving virtual head
            // (cylinder distance first, rotation as tie-break via the
            // mechanical preview from the *initial* state — an
            // approximation adequate for ordering).
            let g = &disk.spec().geometry;
            let mut remaining: Vec<usize> = (0..requests.len()).collect();
            let mut order = Vec::with_capacity(requests.len());
            let mut cur_cyl = disk.head().cyl;
            while !remaining.is_empty() {
                let (pos, &idx) = remaining
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &i)| {
                        let p = g
                            .lba_to_phys(requests[i].0)
                            .expect("planned request in range");
                        (p.cyl.abs_diff(cur_cyl), p.track, p.sector)
                    })
                    .expect("remaining is non-empty");
                let p = g.lba_to_phys(requests[idx].0).expect("in range");
                cur_cyl = p.cyl;
                order.push(idx);
                remaining.remove(pos);
            }
            order
        }
    }
}

fn head_lba(disk: &Disk) -> u64 {
    let h = disk.head();
    disk.spec()
        .geometry
        .phys_to_lba(crate::geometry::PhysAddr {
            cyl: h.cyl,
            track: h.track,
            sector: 0,
        })
        .unwrap_or(0)
}

/// Execute a batch of writes in the planned order, returning the summed
/// service time. `data` supplies one buffer per request.
pub fn service_writes(
    disk: &mut Disk,
    requests: &[(u64, u32)],
    data: &[&[u8]],
    policy: SchedPolicy,
) -> Result<ServiceTime> {
    let order = plan(disk, requests, policy);
    let mut total = ServiceTime::ZERO;
    for i in order {
        total += disk.write_sectors(requests[i].0, data[i])?;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use crate::spec::DiskSpec;
    use crate::SECTOR_BYTES;

    fn random_batch(n: usize, seed: u64, total: u64) -> Vec<(u64, u32)> {
        let mut x = seed;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (((x >> 16) % (total / 8)) * 8, 8u32)
            })
            .collect()
    }

    fn run_policy(policy: SchedPolicy, batch: &[(u64, u32)]) -> u64 {
        let mut disk = Disk::new(DiskSpec::hp97560_sim(), SimClock::new());
        let buf = vec![0u8; 8 * SECTOR_BYTES];
        let data: Vec<&[u8]> = batch.iter().map(|_| buf.as_slice()).collect();
        service_writes(&mut disk, batch, &data, policy)
            .expect("in range")
            .total_ns()
    }

    #[test]
    fn plans_are_permutations() {
        let disk = Disk::new(DiskSpec::hp97560_sim(), SimClock::new());
        let total = disk.spec().geometry.total_sectors();
        let batch = random_batch(40, 9, total);
        for policy in [SchedPolicy::Fcfs, SchedPolicy::Sstf, SchedPolicy::Elevator] {
            let mut order = plan(&disk, &batch, policy);
            order.sort_unstable();
            assert_eq!(order, (0..batch.len()).collect::<Vec<_>>(), "{policy:?}");
        }
    }

    #[test]
    fn sorting_beats_fcfs_on_random_batches() {
        let total = DiskSpec::hp97560_sim().geometry.total_sectors();
        let batch = random_batch(64, 42, total);
        let fcfs = run_policy(SchedPolicy::Fcfs, &batch);
        let sstf = run_policy(SchedPolicy::Sstf, &batch);
        let elev = run_policy(SchedPolicy::Elevator, &batch);
        assert!(sstf < fcfs, "SSTF {sstf} must beat FCFS {fcfs}");
        assert!(elev < fcfs, "elevator {elev} must beat FCFS {fcfs}");
    }

    #[test]
    fn elevator_is_monotone_from_head() {
        let mut disk = Disk::new(DiskSpec::hp97560_sim(), SimClock::new());
        disk.seek_to(20, 0).unwrap();
        let total = disk.spec().geometry.total_sectors();
        let batch = random_batch(30, 7, total);
        let order = plan(&disk, &batch, SchedPolicy::Elevator);
        let lbas: Vec<u64> = order.iter().map(|&i| batch[i].0).collect();
        // One wrap at most: strictly ascending, then ascending again.
        let wraps = lbas.windows(2).filter(|w| w[1] < w[0]).count();
        assert!(wraps <= 1, "elevator wrapped {wraps} times: {lbas:?}");
    }

    #[test]
    fn empty_and_single_batches() {
        let mut disk = Disk::new(DiskSpec::st19101_sim(), SimClock::new());
        assert!(plan(&disk, &[], SchedPolicy::Sstf).is_empty());
        let one = vec![(8u64, 8u32)];
        assert_eq!(plan(&disk, &one, SchedPolicy::Elevator), vec![0]);
        let buf = vec![0u8; 8 * SECTOR_BYTES];
        let t = service_writes(&mut disk, &one, &[buf.as_slice()], SchedPolicy::Fcfs)
            .expect("in range");
        assert!(t.total_ns() > 0);
    }

    /// A batch with deliberate same-sector collisions: roughly a third of
    /// the requests re-target an earlier request's LBA.
    fn colliding_batch(n: usize, seed: u64, total: u64) -> Vec<(u64, u32)> {
        let mut batch = random_batch(n, seed, total);
        let mut x = seed ^ 0x5DEECE66D;
        for i in 1..n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if x.is_multiple_of(3) {
                batch[i].0 = batch[(x >> 8) as usize % i].0;
            }
        }
        batch
    }

    /// No starvation, over many seeded batches: every queued request
    /// appears in the plan exactly once, for every policy, regardless of
    /// batch size or duplicate targets.
    #[test]
    fn property_every_request_is_serviced_exactly_once() {
        let disk = Disk::new(DiskSpec::hp97560_sim(), SimClock::new());
        let total = disk.spec().geometry.total_sectors();
        for seed in 0..24u64 {
            let n = 1 + (seed as usize * 7) % 70;
            let batch = colliding_batch(n, seed.wrapping_mul(0x9E37_79B9), total);
            for policy in [SchedPolicy::Fcfs, SchedPolicy::Sstf, SchedPolicy::Elevator] {
                let mut order = plan(&disk, &batch, policy);
                order.sort_unstable();
                assert_eq!(
                    order,
                    (0..batch.len()).collect::<Vec<_>>(),
                    "{policy:?} seed {seed}: plan is not a permutation"
                );
            }
        }
    }

    /// Per-sector read-your-writes: when two queued requests overlap, the
    /// scheduler must keep their submission order — checked structurally
    /// (plan positions) and observably (the media ends up holding the last
    /// submitted payload for every sector).
    #[test]
    fn property_same_sector_requests_keep_submission_order() {
        let total = DiskSpec::hp97560_sim().geometry.total_sectors();
        for seed in 0..12u64 {
            let batch = colliding_batch(48, seed.wrapping_mul(0xC0FFEE) + 1, total);
            let disk = Disk::new(DiskSpec::hp97560_sim(), SimClock::new());
            for policy in [SchedPolicy::Fcfs, SchedPolicy::Sstf, SchedPolicy::Elevator] {
                let order = plan(&disk, &batch, policy);
                let mut pos = vec![0usize; batch.len()];
                for (p, &i) in order.iter().enumerate() {
                    pos[i] = p;
                }
                for i in 0..batch.len() {
                    for j in i + 1..batch.len() {
                        let (a, an) = batch[i];
                        let (b, bn) = batch[j];
                        if a < b + bn as u64 && b < a + an as u64 {
                            assert!(
                                pos[i] < pos[j],
                                "{policy:?} seed {seed}: overlapping requests \
                                 {i} (lba {a}) and {j} (lba {b}) reordered"
                            );
                        }
                    }
                }
            }
        }
    }

    /// End-to-end read-your-writes: service a colliding batch through each
    /// scheduler and verify every sector holds the payload of the *last
    /// submitted* write that covers it.
    #[test]
    fn property_media_holds_last_submitted_write() {
        let total = DiskSpec::hp97560_sim().geometry.total_sectors();
        for policy in [SchedPolicy::Fcfs, SchedPolicy::Sstf, SchedPolicy::Elevator] {
            let batch = colliding_batch(32, 0xFEED + policy as u64, total);
            // One distinct payload per request.
            let payloads: Vec<Vec<u8>> = (0..batch.len())
                .map(|i| vec![i as u8 + 1; batch[i].1 as usize * SECTOR_BYTES])
                .collect();
            let data: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
            let mut disk = Disk::new(DiskSpec::hp97560_sim(), SimClock::new());
            service_writes(&mut disk, &batch, &data, policy).expect("in range");
            // Reference: submission order, last writer wins.
            let mut want: std::collections::HashMap<u64, u8> = std::collections::HashMap::new();
            for (i, &(lba, n)) in batch.iter().enumerate() {
                for s in 0..n as u64 {
                    want.insert(lba + s, i as u8 + 1);
                }
            }
            let mut sector = vec![0u8; SECTOR_BYTES];
            for (&lba, &tag) in &want {
                disk.read_sectors(lba, &mut sector).expect("in range");
                assert!(
                    sector.iter().all(|&b| b == tag),
                    "{policy:?}: sector {lba} lost the last submitted write \
                     (got {:#04x}, want {tag:#04x})",
                    sector[0]
                );
            }
        }
    }

    #[test]
    fn queue_sorting_still_loses_to_eager_writing() {
        // The paper's §5.2 point: even perfectly sorted update-in-place
        // writes cannot approach eager writing. Compare the best scheduler
        // against a half-rotation-free budget.
        let total = DiskSpec::hp97560_sim().geometry.total_sectors();
        let batch = random_batch(64, 5, total);
        let best =
            run_policy(SchedPolicy::Sstf, &batch).min(run_policy(SchedPolicy::Elevator, &batch));
        let per_write_ms = crate::ns_to_ms(best) / batch.len() as f64;
        // Sorted update-in-place still averages several ms per write on
        // this disk; eager writing's Figure 1 bound at these utilisations
        // is well under 1 ms.
        assert!(
            per_write_ms > 2.0,
            "sorted writes cost {per_write_ms} ms each"
        );
    }
}
