//! Process-wide switch selecting the pre-optimisation *reference* paths.
//!
//! Several hot paths in this workspace keep their original, slower
//! implementation around as an oracle (the same pattern as
//! `core::alloc::reference`): the per-run stepwise clock discipline in
//! [`crate::Disk::read_sectors`] / [`crate::Disk::write_sectors`], and the
//! full-rescan victim pickers in `core::compact` and `lfs`. Setting
//! `VLFS_REFERENCE=1` in the environment routes every such call site to its
//! reference implementation for the whole process, which lets CI re-run the
//! figure suite both ways and diff the stdout byte-for-byte.
//!
//! The switch only ever selects between *representation-equivalent* code
//! paths — identical virtual-clock arithmetic and identical pick results —
//! so figure output must not depend on it; the byte-identity check is what
//! enforces that.

use std::sync::OnceLock;

/// True when `VLFS_REFERENCE` is set to `1` (or `true`) in the environment.
/// Read once per process; changing the variable afterwards has no effect.
pub fn reference_mode() -> bool {
    static MODE: OnceLock<bool> = OnceLock::new();
    *MODE.get_or_init(|| {
        std::env::var("VLFS_REFERENCE")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(false)
    })
}
