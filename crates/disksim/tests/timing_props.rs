//! Property tests of the disk simulator's timing invariants.

use proptest::prelude::*;

use disksim::{ns_to_ms, Disk, DiskSpec, SimClock, SECTOR_BYTES};

fn specs() -> impl Strategy<Value = DiskSpec> {
    prop_oneof![Just(DiskSpec::hp97560_sim()), Just(DiskSpec::st19101_sim())]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Every operation advances the clock by exactly its reported total.
    #[test]
    fn service_time_equals_clock_delta(
        spec in specs(),
        ops in proptest::collection::vec((any::<bool>(), 0u64..40_000, 1u32..16), 1..40),
    ) {
        let total = spec.geometry.total_sectors();
        let clock = SimClock::new();
        let mut disk = Disk::new(spec, clock.clone());
        for (write, lba, count) in ops {
            let lba = lba % total;
            let count = count.min((total - lba) as u32);
            let t0 = clock.now();
            let st = if write {
                disk.write_sectors(lba, &vec![1u8; count as usize * SECTOR_BYTES])
                    .expect("in range")
            } else {
                let mut buf = vec![0u8; count as usize * SECTOR_BYTES];
                disk.read_sectors(lba, &mut buf).expect("in range")
            };
            prop_assert_eq!(clock.now() - t0, st.total_ns());
            prop_assert_eq!(
                st.total_ns(),
                st.overhead_ns + st.seek_ns + st.head_switch_ns + st.rotation_ns + st.transfer_ns
            );
        }
    }

    /// `preview_access` predicts writes exactly, from any machine state.
    #[test]
    fn preview_matches_execution(
        spec in specs(),
        warm in proptest::collection::vec(0u64..40_000, 0..10),
        target in 0u64..40_000,
        count in 1u32..16,
        idle_ns in 0u64..30_000_000,
    ) {
        let total = spec.geometry.total_sectors();
        let clock = SimClock::new();
        let mut disk = Disk::new(spec, clock.clone());
        for lba in warm {
            disk.write_sectors(lba % total, &vec![2u8; SECTOR_BYTES]).expect("in range");
        }
        clock.advance(idle_ns); // arbitrary rotational phase
        let lba = target % total;
        let count = count.min((total - lba) as u32);
        let predicted = disk.preview_access(lba, count).expect("in range");
        let actual = disk
            .write_sectors(lba, &vec![3u8; count as usize * SECTOR_BYTES])
            .expect("in range");
        prop_assert_eq!(predicted, actual);
    }

    /// Single-track rotational waits never exceed one revolution, and
    /// positioning costs are bounded by seek-max + switch + one revolution.
    #[test]
    fn positioning_costs_are_bounded(
        spec in specs(),
        moves in proptest::collection::vec((0u64..40_000, 1u32..9), 1..30),
    ) {
        let total = spec.geometry.total_sectors();
        let rev = spec.mech.revolution_ns();
        let max_seek = spec.mech.seek_ns(spec.geometry.cylinders());
        let spec_seek_one = spec.mech.seek_ns(1);
        let clock = SimClock::new();
        let mut disk = Disk::new(spec, clock);
        for (lba, count) in moves {
            let lba = lba % total;
            let count = count.min((total - lba) as u32);
            let st = disk
                .write_sectors(lba, &vec![1u8; count as usize * SECTOR_BYTES])
                .expect("in range");
            // Each per-track run waits under a revolution; small requests
            // span at most 2 runs.
            prop_assert!(st.rotation_ns <= 2 * rev, "rotation {} ms", ns_to_ms(st.rotation_ns));
            // A small request spans at most two runs; a cylinder crossing
            // adds one single-cylinder seek on top of the initial one.
            prop_assert!(st.seek_ns <= max_seek + spec_seek_one);
        }
    }

    /// The batched single-event command path is arithmetically identical to
    /// the stepwise per-run reference discipline: same service times, same
    /// clock, same head position, same data — only the event count differs.
    #[test]
    fn batched_commands_match_stepwise_reference(
        spec in specs(),
        ops in proptest::collection::vec((any::<bool>(), 0u64..40_000, 1u32..80), 1..40),
    ) {
        let total = spec.geometry.total_sectors();
        let fast_clock = SimClock::new();
        let slow_clock = SimClock::new();
        let mut fast = Disk::new(spec.clone(), fast_clock.clone());
        let mut slow = Disk::new(spec, slow_clock.clone());
        for (i, (write, lba, count)) in ops.into_iter().enumerate() {
            let lba = lba % total;
            let count = count.min((total - lba) as u32);
            let bytes = count as usize * SECTOR_BYTES;
            let (st_fast, st_slow) = if write {
                let data = vec![i as u8; bytes];
                (
                    fast.write_sectors(lba, &data).expect("in range"),
                    slow.write_sectors_stepwise(lba, &data).expect("in range"),
                )
            } else {
                let mut a = vec![0u8; bytes];
                let mut b = vec![0u8; bytes];
                let r = (
                    fast.read_sectors(lba, &mut a).expect("in range"),
                    slow.read_sectors_stepwise(lba, &mut b).expect("in range"),
                );
                prop_assert_eq!(a, b);
                r
            };
            prop_assert_eq!(st_fast, st_slow);
            prop_assert_eq!(fast_clock.now(), slow_clock.now());
            prop_assert_eq!(fast.head(), slow.head());
        }
    }

    /// Data integrity under arbitrary interleavings: the store behaves as
    /// a byte array regardless of timing state.
    #[test]
    fn reads_see_latest_writes(
        spec in specs(),
        ops in proptest::collection::vec((0u64..500, any::<u8>()), 1..60),
    ) {
        let clock = SimClock::new();
        let mut disk = Disk::new(spec, clock);
        let mut model: std::collections::HashMap<u64, u8> = Default::default();
        for (lba, fill) in ops {
            disk.write_sectors(lba, &vec![fill; SECTOR_BYTES]).expect("in range");
            model.insert(lba, fill);
        }
        for (lba, fill) in model {
            let mut buf = vec![0u8; SECTOR_BYTES];
            disk.read_sectors(lba, &mut buf).expect("in range");
            prop_assert!(buf.iter().all(|&b| b == fill), "lba {}", lba);
        }
    }
}
