#![warn(missing_docs)]
//! # ufs — an update-in-place FFS-like file system
//!
//! The baseline the paper measures eager writing against: a classic Unix
//! file system with synchronous metadata, optional synchronous data, in-place
//! block updates, locality-seeking allocation, a write-back buffer cache
//! with elevator-sorted flushes, and sequential read-ahead. It runs over any
//! [`disksim::BlockDevice`], so the same code serves as "UFS on a regular
//! disk" and "UFS on a VLD" — the paper's Figure 5 combinations.
//!
//! ```
//! use disksim::{DiskSpec, RegularDisk, SimClock};
//! use fscore::{FileSystem, HostModel};
//! use ufs::{Ufs, UfsConfig};
//!
//! let dev = RegularDisk::new(DiskSpec::st19101_sim(), SimClock::new(), 4096);
//! let mut fs = Ufs::format(Box::new(dev), HostModel::instant(), UfsConfig::default()).unwrap();
//! let f = fs.create("hello").unwrap();
//! fs.write(f, 0, b"hi there").unwrap();
//! let mut buf = [0u8; 8];
//! assert_eq!(fs.read(f, 0, &mut buf).unwrap(), 8);
//! assert_eq!(&buf, b"hi there");
//! ```

pub mod bitmap;
pub mod dir;
pub mod fs;
pub mod fsck;
pub mod inode;
pub mod layout;

pub use fs::{Ufs, UfsConfig, UfsSnapshot};
pub use fsck::{fsck, fsck_repair, FsckError, FsckReport};
pub use layout::{Layout, BLOCK_SIZE};

#[cfg(test)]
mod tests {
    use super::*;
    use disksim::{DiskSpec, RegularDisk, SimClock};
    use fscore::{FileSystem, FsError, HostModel};

    fn fresh() -> Ufs {
        let dev = RegularDisk::new(DiskSpec::st19101_sim(), SimClock::new(), BLOCK_SIZE);
        Ufs::format(Box::new(dev), HostModel::instant(), UfsConfig::default()).unwrap()
    }

    #[test]
    fn create_open_delete_lifecycle() {
        let mut fs = fresh();
        let f = fs.create("a").unwrap();
        assert_eq!(fs.file_size(f).unwrap(), 0);
        assert!(matches!(fs.create("a"), Err(FsError::Exists)));
        let g = fs.open("a").unwrap();
        assert_ne!(f, g, "handles are distinct");
        fs.delete("a").unwrap();
        assert!(matches!(fs.open("a"), Err(FsError::NotFound)));
        assert!(matches!(fs.delete("a"), Err(FsError::NotFound)));
    }

    #[test]
    fn rename_moves_a_file_and_survives_remount() {
        let mut fs = fresh();
        let f = fs.create("old").unwrap();
        fs.write(f, 0, b"payload").unwrap();
        fs.create("taken").unwrap();
        assert!(matches!(fs.rename("missing", "x"), Err(FsError::NotFound)));
        assert!(matches!(fs.rename("old", "taken"), Err(FsError::Exists)));
        fs.rename("old", "old").unwrap(); // no-op
        fs.rename("old", "new").unwrap();
        assert!(matches!(fs.open("old"), Err(FsError::NotFound)));
        // Open handles keep working across the rename (they hold the inode).
        let mut buf = [0u8; 7];
        assert_eq!(fs.read(f, 0, &mut buf).unwrap(), 7);
        assert_eq!(&buf, b"payload");
        fs.sync().unwrap();
        // Rename is synchronous metadata: the new name survives a remount.
        let mut fs = Ufs::mount(fs.into_device(), HostModel::instant()).unwrap();
        let g = fs.open("new").unwrap();
        let mut buf = [0u8; 7];
        assert_eq!(fs.read(g, 0, &mut buf).unwrap(), 7);
        assert_eq!(&buf, b"payload");
        assert!(matches!(fs.open("old"), Err(FsError::NotFound)));
        let report = fsck(fs.device_mut()).unwrap();
        assert!(report.is_clean(), "errors: {:?}", report.errors);
    }

    #[test]
    fn rename_across_directories() {
        let mut fs = fresh();
        fs.mkdir("d1").unwrap();
        fs.mkdir("d2").unwrap();
        let f = fs.create("d1/file").unwrap();
        fs.write(f, 0, b"x").unwrap();
        fs.rename("d1/file", "d2/file").unwrap();
        assert!(matches!(fs.open("d1/file"), Err(FsError::NotFound)));
        fs.open("d2/file").unwrap();
        // The old directory is empty again, so it can be deleted.
        fs.delete("d1").unwrap();
        assert!(matches!(
            fs.rename("d2", "d3"),
            Err(FsError::Invalid(_))
        ));
    }

    #[test]
    fn write_read_various_offsets() {
        let mut fs = fresh();
        let f = fs.create("f").unwrap();
        // Unaligned write spanning a block boundary.
        let data: Vec<u8> = (0..5000u32).map(|i| i as u8).collect();
        fs.write(f, 4000, &data).unwrap();
        assert_eq!(fs.file_size(f).unwrap(), 9000);
        let mut out = vec![0u8; 5000];
        assert_eq!(fs.read(f, 4000, &mut out).unwrap(), 5000);
        assert_eq!(out, data);
        // The hole before offset 4000 reads as zeros.
        let mut head = vec![0xFFu8; 4000];
        assert_eq!(fs.read(f, 0, &mut head).unwrap(), 4000);
        assert!(head.iter().all(|&b| b == 0));
        // Reading past EOF is short.
        let mut tail = vec![0u8; 100];
        assert_eq!(fs.read(f, 8990, &mut tail).unwrap(), 10);
    }

    #[test]
    fn data_survives_cache_drop() {
        let mut fs = fresh();
        let f = fs.create("f").unwrap();
        let data = vec![0x5Au8; 64 * 1024];
        fs.write(f, 0, &data).unwrap();
        fs.sync().unwrap();
        fs.drop_caches();
        let mut out = vec![0u8; data.len()];
        fs.read(f, 0, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn large_file_through_indirect_blocks() {
        let mut fs = fresh();
        let f = fs.create("big").unwrap();
        // 5 MB exercises direct + indirect + double-indirect paths.
        let chunk = vec![0xA1u8; 128 * 1024];
        for i in 0..40u64 {
            fs.write(f, i * chunk.len() as u64, &chunk).unwrap();
        }
        assert_eq!(fs.file_size(f).unwrap(), 40 * 128 * 1024);
        fs.sync().unwrap();
        fs.drop_caches();
        let mut out = vec![0u8; chunk.len()];
        for i in [0u64, 13, 39] {
            fs.read(f, i * chunk.len() as u64, &mut out).unwrap();
            assert!(out.iter().all(|&b| b == 0xA1), "chunk {i}");
        }
    }

    #[test]
    fn remount_preserves_everything() {
        let mut fs = fresh();
        let f = fs.create("keep").unwrap();
        fs.write(f, 0, b"persistent data").unwrap();
        fs.create("second").unwrap();
        fs.sync().unwrap();
        let dev = fs.into_device();
        let mut fs2 = Ufs::mount(dev, HostModel::instant()).unwrap();
        let f2 = fs2.open("keep").unwrap();
        let mut out = vec![0u8; 15];
        assert_eq!(fs2.read(f2, 0, &mut out).unwrap(), 15);
        assert_eq!(&out, b"persistent data");
        assert!(fs2.open("second").is_ok());
        assert!(fs2.open("missing").is_err());
    }

    #[test]
    fn delete_frees_space() {
        let mut fs = fresh();
        let before = fs.free_blocks();
        let f = fs.create("tmp").unwrap();
        fs.write(f, 0, &vec![1u8; 1 << 20]).unwrap();
        fs.sync().unwrap();
        assert!(fs.free_blocks() < before);
        fs.delete("tmp").unwrap();
        // All data blocks return (the dir block stays allocated).
        assert!(fs.free_blocks() >= before - 1);
    }

    #[test]
    fn nospace_at_reserve_boundary() {
        let mut fs = fresh();
        let f = fs.create("filler").unwrap();
        let chunk = vec![0u8; 256 * 1024];
        let mut off = 0u64;
        let err = loop {
            match fs.write(f, off, &chunk) {
                Ok(()) => off += chunk.len() as u64,
                Err(e) => break e,
            }
        };
        assert_eq!(err, FsError::NoSpace);
        // df-style utilisation ≈ 100% (reserve counted as used).
        assert!(fs.utilization() > 0.97, "utilization {}", fs.utilization());
        assert_eq!(fs.free_blocks(), 0);
        // Deleting makes room again.
        fs.delete("filler").unwrap();
        assert!(fs.free_blocks() > 0);
    }

    #[test]
    fn sequential_layout_from_allocator() {
        let mut fs = fresh();
        let f = fs.create("seq").unwrap();
        fs.write(f, 0, &vec![7u8; 1 << 20]).unwrap();
        fs.sync().unwrap();
        fs.drop_caches();
        // A sequential cold read of 1 MB should enjoy read-ahead: far fewer
        // device commands than blocks.
        let before = fs.device().disk_stats().reads;
        let mut out = vec![0u8; 1 << 20];
        let mut off = 0usize;
        while off < out.len() {
            let mut chunk = vec![0u8; 4096];
            fs.read(f, off as u64, &mut chunk).unwrap();
            out[off..off + 4096].copy_from_slice(&chunk);
            off += 4096;
        }
        let cmds = fs.device().disk_stats().reads - before;
        assert!(
            cmds < 128,
            "{cmds} read commands for 256 blocks — read-ahead not batching"
        );
        assert!(out.iter().all(|&b| b == 7));
    }

    #[test]
    fn sync_data_mode_writes_through() {
        let mut fs = fresh();
        fs.set_sync_writes(true);
        let f = fs.create("s").unwrap();
        let before = fs.device().disk_stats().writes;
        fs.write(f, 0, &vec![1u8; 4096]).unwrap();
        let after = fs.device().disk_stats().writes;
        assert!(after > before, "sync write must hit the device immediately");
    }

    #[test]
    fn async_writes_batch_on_sync() {
        let mut fs = fresh();
        let f = fs.create("a").unwrap();
        let w_before = fs.device().disk_stats().writes;
        fs.write(f, 0, &vec![1u8; 1 << 20]).unwrap();
        let w_mid = fs.device().disk_stats().writes;
        // Pointer blocks are metadata and are written through (zeroed at
        // allocation, slot updates flushed once per operation); the 256
        // data blocks themselves must all stay in cache.
        assert!(
            w_mid - w_before <= 2,
            "async data writes stay in cache (saw {} device writes)",
            w_mid - w_before
        );
        fs.sync().unwrap();
        let w_after = fs.device().disk_stats().writes;
        // Clustering: 256 data blocks should flush in a handful of commands.
        assert!(
            w_after - w_mid < 40,
            "flush used {} commands",
            w_after - w_mid
        );
    }

    #[test]
    fn many_files_in_directory() {
        let mut fs = fresh();
        for i in 0..300 {
            fs.create(&format!("file{i:04}")).unwrap();
        }
        for i in (0..300).step_by(2) {
            fs.delete(&format!("file{i:04}")).unwrap();
        }
        // Slot reuse: creating new files fills the gaps.
        for i in 0..150 {
            fs.create(&format!("new{i:04}")).unwrap();
        }
        assert!(fs.open("file0001").is_ok());
        assert!(fs.open("file0000").is_err());
        assert!(fs.open("new0149").is_ok());
    }

    #[test]
    fn directories_nest_and_resolve() {
        let mut fs = fresh();
        fs.mkdir("inbox").unwrap();
        fs.mkdir("inbox/2026").unwrap();
        fs.mkdir("inbox/2026/jul").unwrap();
        let f = fs.create("inbox/2026/jul/msg1").unwrap();
        fs.write(f, 0, b"hello from deep down").unwrap();
        fs.sync().unwrap();
        fs.drop_caches();
        let f = fs.open("inbox/2026/jul/msg1").unwrap();
        let mut out = vec![0u8; 20];
        assert_eq!(fs.read(f, 0, &mut out).unwrap(), 20);
        assert_eq!(&out, b"hello from deep down");
        // Same leaf name in different directories is fine.
        fs.create("msg1").unwrap();
        fs.mkdir("outbox").unwrap();
        fs.create("outbox/msg1").unwrap();
        let mut names = fs.list("inbox/2026/jul").unwrap();
        names.sort();
        assert_eq!(names, vec!["msg1"]);
        let mut top = fs.list("/").unwrap();
        top.sort();
        assert_eq!(top, vec!["inbox", "msg1", "outbox"]);
    }

    #[test]
    fn directory_edge_cases() {
        let mut fs = fresh();
        fs.mkdir("d").unwrap();
        assert!(matches!(fs.mkdir("d"), Err(FsError::Exists)));
        assert!(matches!(fs.create("d"), Err(FsError::Exists)));
        assert!(matches!(fs.create("missing/x"), Err(FsError::NotFound)));
        assert!(matches!(fs.open("d"), Err(FsError::Invalid(_))));
        // Deleting a non-empty directory is refused; empty works.
        fs.create("d/file").unwrap();
        assert!(matches!(fs.delete("d"), Err(FsError::Invalid(_))));
        fs.delete("d/file").unwrap();
        fs.delete("d").unwrap();
        assert!(fs.open("d/file").is_err());
        // A file is not a directory.
        fs.create("plain").unwrap();
        assert!(matches!(fs.create("plain/x"), Err(FsError::Invalid(_))));
        assert!(fs.list("plain").is_err());
        // Paths normalise: leading/trailing slashes are tolerated.
        fs.mkdir("/norm/").unwrap();
        assert!(fs.open("norm").is_err()); // it's a dir
        fs.create("norm/f").unwrap();
        assert!(fs.open("/norm/f").is_ok());
    }

    #[test]
    fn directory_tree_survives_remount_and_fsck() {
        let mut fs = fresh();
        fs.mkdir("a").unwrap();
        fs.mkdir("a/b").unwrap();
        for i in 0..20 {
            let f = fs.create(&format!("a/b/f{i}")).unwrap();
            fs.write(f, 0, &vec![i as u8; 5000]).unwrap();
        }
        fs.create("top").unwrap();
        fs.sync().unwrap();
        let mut dev = fs.into_device();
        let report = crate::fsck::fsck(dev.as_mut()).unwrap();
        assert!(report.is_clean(), "errors: {:?}", report.errors);
        assert_eq!(report.files, 21, "20 nested + 1 top-level");
        let mut fs2 = Ufs::mount(dev, HostModel::instant()).unwrap();
        for i in (0..20).step_by(7) {
            let f = fs2.open(&format!("a/b/f{i}")).unwrap();
            let mut out = vec![0u8; 5000];
            assert_eq!(fs2.read(f, 0, &mut out).unwrap(), 5000);
            assert!(out.iter().all(|&b| b == i as u8), "a/b/f{i}");
        }
        assert!(fs2.open("top").is_ok());
        // The tree structure itself survived.
        assert_eq!(fs2.list("a").unwrap(), vec!["b"]);
        assert_eq!(fs2.list("a/b").unwrap().len(), 20);
    }

    #[test]
    fn inode_exhaustion_reports_nospace() {
        let dev = RegularDisk::new(DiskSpec::st19101_sim(), SimClock::new(), BLOCK_SIZE);
        let mut fs = Ufs::format(
            Box::new(dev),
            HostModel::instant(),
            UfsConfig {
                inode_count: 40,
                ..UfsConfig::default()
            },
        )
        .unwrap();
        let mut created = 0;
        let err = loop {
            match fs.create(&format!("n{created}")) {
                Ok(_) => created += 1,
                Err(e) => break e,
            }
        };
        assert_eq!(err, FsError::NoSpace);
        // Root takes one inode; the other 39 are files.
        assert_eq!(created, 39);
        // Deleting frees an inode for reuse.
        fs.delete("n0").unwrap();
        assert!(fs.create("again").is_ok());
    }

    #[test]
    fn bad_handle_rejected() {
        let mut fs = fresh();
        assert!(matches!(fs.write(999, 0, b"x"), Err(FsError::BadHandle)));
        assert!(matches!(
            fs.read(999, 0, &mut [0u8; 1]),
            Err(FsError::BadHandle)
        ));
        assert!(matches!(fs.file_size(999), Err(FsError::BadHandle)));
    }

    #[test]
    fn clock_advances_with_work() {
        let dev = RegularDisk::new(DiskSpec::st19101_sim(), SimClock::new(), BLOCK_SIZE);
        let mut fs = Ufs::format(
            Box::new(dev),
            HostModel::sparcstation_10(),
            UfsConfig::default(),
        )
        .unwrap();
        let c = fs.clock();
        let t0 = c.now();
        let f = fs.create("t").unwrap();
        assert!(c.now() > t0, "synchronous metadata must cost time");
        let t1 = c.now();
        fs.write(f, 0, &vec![0u8; 4096]).unwrap();
        assert!(c.now() > t1, "host cost accrues even for cached writes");
    }

    #[test]
    fn idle_advances_clock_exactly() {
        let mut fs = fresh();
        let c = fs.clock();
        let t0 = c.now();
        fs.idle(5_000_000);
        assert_eq!(c.now() - t0, 5_000_000);
    }
}
