//! In-memory bitmaps backing the on-disk inode and block bitmaps.
//!
//! FFS-style: bitmap updates are *delayed* metadata — they live in memory,
//! are marked dirty per covering disk block, and reach the device on sync.
//! (Inode and directory updates, by contrast, are written synchronously by
//! the file system, which is exactly what makes small-file workloads slow
//! on an update-in-place disk.)

use crate::layout::BLOCK_SIZE;

/// A bitmap with per-disk-block dirty tracking. Bit set = in use.
#[derive(Debug, Clone)]
pub struct Bitmap {
    bits: Vec<u64>,
    len: u64,
    used: u64,
    /// Dirty flags, one per BLOCK_SIZE chunk of the bitmap.
    dirty: Vec<bool>,
}

impl Bitmap {
    /// An all-free bitmap of `len` bits.
    pub fn new(len: u64) -> Self {
        let words = (len as usize).div_ceil(64);
        let blocks = (words * 8).div_ceil(BLOCK_SIZE).max(1);
        Self {
            bits: vec![0; words],
            len,
            used: 0,
            dirty: vec![false; blocks],
        }
    }

    /// Rebuild from on-disk bytes.
    pub fn from_bytes(len: u64, bytes: &[u8]) -> Self {
        let mut bm = Self::new(len);
        for i in 0..len {
            let byte = bytes.get(i as usize / 8).copied().unwrap_or(0);
            if byte >> (i % 8) & 1 == 1 {
                bm.set(i);
            }
        }
        bm.clear_dirty();
        bm
    }

    /// Serialise bit `i` into byte `i/8`, LSB-first (matching
    /// [`Bitmap::from_bytes`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; (self.len as usize).div_ceil(8)];
        for i in 0..self.len {
            if self.get(i) {
                out[i as usize / 8] |= 1 << (i % 8);
            }
        }
        out
    }

    /// Number of bits.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if no bits are set.
    pub fn is_empty(&self) -> bool {
        self.used == 0
    }

    /// Bits set (in use).
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bits clear (free).
    pub fn free(&self) -> u64 {
        self.len - self.used
    }

    /// Test a bit.
    pub fn get(&self, i: u64) -> bool {
        debug_assert!(i < self.len);
        self.bits[(i / 64) as usize] >> (i % 64) & 1 == 1
    }

    /// Set a bit (idempotent).
    pub fn set(&mut self, i: u64) {
        debug_assert!(i < self.len);
        let w = &mut self.bits[(i / 64) as usize];
        let m = 1u64 << (i % 64);
        if *w & m == 0 {
            *w |= m;
            self.used += 1;
            self.mark_dirty(i);
        }
    }

    /// Clear a bit (idempotent).
    pub fn clear(&mut self, i: u64) {
        debug_assert!(i < self.len);
        let w = &mut self.bits[(i / 64) as usize];
        let m = 1u64 << (i % 64);
        if *w & m != 0 {
            *w &= !m;
            self.used -= 1;
            self.mark_dirty(i);
        }
    }

    fn mark_dirty(&mut self, i: u64) {
        let chunk = (i / 8) as usize / BLOCK_SIZE;
        self.dirty[chunk] = true;
    }

    /// First free bit at or after `hint`, wrapping around — the FFS
    /// locality heuristic (allocate near the previous block).
    pub fn alloc_from(&mut self, hint: u64) -> Option<u64> {
        if self.used == self.len {
            return None;
        }
        let start = if hint >= self.len { 0 } else { hint };
        let mut i = start;
        loop {
            if !self.get(i) {
                self.set(i);
                return Some(i);
            }
            i += 1;
            if i == self.len {
                i = 0;
            }
            if i == start {
                return None;
            }
        }
    }

    /// Indices of dirty BLOCK_SIZE chunks, clearing the flags.
    pub fn take_dirty_chunks(&mut self) -> Vec<usize> {
        let out: Vec<usize> = self
            .dirty
            .iter()
            .enumerate()
            .filter(|(_, &d)| d)
            .map(|(i, _)| i)
            .collect();
        self.clear_dirty();
        out
    }

    /// Any dirty chunks pending?
    pub fn has_dirty(&self) -> bool {
        self.dirty.iter().any(|&d| d)
    }

    fn clear_dirty(&mut self) {
        self.dirty.iter_mut().for_each(|d| *d = false);
    }

    /// One BLOCK_SIZE-sized chunk of the serialised bitmap (zero-padded).
    pub fn chunk_bytes(&self, chunk: usize) -> Vec<u8> {
        let all = self.to_bytes();
        let start = chunk * BLOCK_SIZE;
        let mut out = vec![0u8; BLOCK_SIZE];
        if start < all.len() {
            let end = (start + BLOCK_SIZE).min(all.len());
            out[..end - start].copy_from_slice(&all[start..end]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_clear_counts() {
        let mut b = Bitmap::new(100);
        assert_eq!(b.free(), 100);
        b.set(5);
        b.set(5);
        assert_eq!(b.used(), 1);
        b.clear(5);
        b.clear(5);
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn alloc_from_wraps_and_prefers_hint() {
        let mut b = Bitmap::new(10);
        assert_eq!(b.alloc_from(7), Some(7));
        assert_eq!(b.alloc_from(7), Some(8));
        assert_eq!(b.alloc_from(9), Some(9));
        assert_eq!(b.alloc_from(9), Some(0), "wraps to the start");
        for _ in 0..6 {
            b.alloc_from(0);
        }
        assert_eq!(b.free(), 0);
        assert_eq!(b.alloc_from(3), None);
    }

    #[test]
    fn byte_roundtrip() {
        let mut b = Bitmap::new(77);
        for i in [0u64, 7, 8, 63, 64, 76] {
            b.set(i);
        }
        let again = Bitmap::from_bytes(77, &b.to_bytes());
        for i in 0..77 {
            assert_eq!(b.get(i), again.get(i), "bit {i}");
        }
        assert_eq!(again.used(), 6);
    }

    #[test]
    fn dirty_chunk_tracking() {
        let mut b = Bitmap::new(BLOCK_SIZE as u64 * 8 * 2); // two chunks
        assert!(!b.has_dirty());
        b.set(3);
        b.set(BLOCK_SIZE as u64 * 8 + 1);
        assert_eq!(b.take_dirty_chunks(), vec![0, 1]);
        assert!(!b.has_dirty());
        b.clear(3);
        assert_eq!(b.take_dirty_chunks(), vec![0]);
    }

    #[test]
    fn chunk_bytes_padding() {
        let mut b = Bitmap::new(16);
        b.set(0);
        b.set(9);
        let c = b.chunk_bytes(0);
        assert_eq!(c.len(), BLOCK_SIZE);
        assert_eq!(c[0], 1);
        assert_eq!(c[1], 2);
        assert!(c[2..].iter().all(|&x| x == 0));
    }
}
