//! Flat root-directory entries.
//!
//! The benchmarks use a single namespace, so the file system keeps one root
//! directory whose data is an ordinary file (inode 0) of fixed 32-byte
//! entries. A zero name length marks a free slot, so freshly allocated
//! directory blocks are valid empty directories.

use fscore::{FsError, FsResult};

/// Bytes per directory entry.
pub const DIRENT_SIZE: usize = 32;
/// Maximum file-name length.
pub const MAX_NAME: usize = DIRENT_SIZE - 5;

/// A directory entry: a name bound to an inode number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dirent {
    /// Inode of the file.
    pub ino: u32,
    /// File name (1..=MAX_NAME bytes).
    pub name: String,
}

impl Dirent {
    /// Validate a candidate file name.
    pub fn check_name(name: &str) -> FsResult<()> {
        if name.is_empty() {
            return Err(FsError::Invalid("empty file name"));
        }
        if name.len() > MAX_NAME {
            return Err(FsError::Invalid("file name too long"));
        }
        Ok(())
    }

    /// Serialise into a 32-byte slot.
    pub fn encode_into(&self, slot: &mut [u8]) {
        assert_eq!(slot.len(), DIRENT_SIZE);
        slot.fill(0);
        slot[0..4].copy_from_slice(&self.ino.to_le_bytes());
        let bytes = self.name.as_bytes();
        slot[4] = bytes.len() as u8;
        slot[5..5 + bytes.len()].copy_from_slice(bytes);
    }

    /// Decode a slot; `None` for a free slot.
    pub fn decode(slot: &[u8]) -> Option<Dirent> {
        if slot.len() != DIRENT_SIZE {
            return None;
        }
        let len = slot[4] as usize;
        if len == 0 || len > MAX_NAME {
            return None;
        }
        let name = String::from_utf8(slot[5..5 + len].to_vec()).ok()?;
        Some(Dirent {
            ino: u32::from_le_bytes(slot[0..4].try_into().expect("slice of 4")),
            name,
        })
    }

    /// Write a free-slot marker.
    pub fn clear_slot(slot: &mut [u8]) {
        slot.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let d = Dirent {
            ino: 42,
            name: "hello.txt".into(),
        };
        let mut slot = vec![0u8; DIRENT_SIZE];
        d.encode_into(&mut slot);
        assert_eq!(Dirent::decode(&slot), Some(d));
    }

    #[test]
    fn zero_slot_is_free() {
        assert_eq!(Dirent::decode(&[0u8; DIRENT_SIZE]), None);
    }

    #[test]
    fn cleared_slot_is_free() {
        let d = Dirent {
            ino: 1,
            name: "x".into(),
        };
        let mut slot = vec![0u8; DIRENT_SIZE];
        d.encode_into(&mut slot);
        Dirent::clear_slot(&mut slot);
        assert_eq!(Dirent::decode(&slot), None);
    }

    #[test]
    fn name_validation() {
        assert!(Dirent::check_name("ok").is_ok());
        assert!(Dirent::check_name("").is_err());
        assert!(Dirent::check_name(&"x".repeat(MAX_NAME)).is_ok());
        assert!(Dirent::check_name(&"x".repeat(MAX_NAME + 1)).is_err());
    }
}
