//! On-disk inodes: 12 direct pointers, one indirect, one double-indirect.
//!
//! With 4 KB blocks and 4-byte pointers that is 48 KB direct, +4 MB
//! indirect, +4 GB double-indirect — comfortably past the 10–18 MB files
//! the paper's large-file and utilisation benchmarks use.

use crate::layout::{BLOCK_SIZE, INODE_SIZE};
use fscore::{FsError, FsResult};

/// Number of direct block pointers.
pub const NDIRECT: usize = 12;
/// Pointers per indirect block.
pub const PTRS_PER_BLOCK: u64 = (BLOCK_SIZE / 4) as u64;
/// Sentinel meaning "no block".
pub const NO_BLOCK: u32 = 0;

/// An in-memory inode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Inode {
    /// File length in bytes.
    pub size: u64,
    /// In-use marker (a free inode slot is all zeros).
    pub allocated: bool,
    /// Directory marker: the data blocks hold directory entries.
    pub is_dir: bool,
    /// Direct block pointers.
    pub direct: [u32; NDIRECT],
    /// Single-indirect block pointer.
    pub indirect: u32,
    /// Double-indirect block pointer.
    pub dindirect: u32,
}

impl Inode {
    /// A freshly allocated empty file.
    pub fn empty() -> Self {
        Self {
            size: 0,
            allocated: true,
            is_dir: false,
            direct: [NO_BLOCK; NDIRECT],
            indirect: NO_BLOCK,
            dindirect: NO_BLOCK,
        }
    }

    /// A freshly allocated empty directory.
    pub fn empty_dir() -> Self {
        Self {
            is_dir: true,
            ..Self::empty()
        }
    }

    /// Largest representable file, in blocks.
    pub fn max_blocks() -> u64 {
        NDIRECT as u64 + PTRS_PER_BLOCK + PTRS_PER_BLOCK * PTRS_PER_BLOCK
    }

    /// Number of blocks the file spans (by size).
    pub fn blocks(&self) -> u64 {
        self.size.div_ceil(BLOCK_SIZE as u64)
    }

    /// Serialise into an [`INODE_SIZE`]-byte slot.
    pub fn encode_into(&self, slot: &mut [u8]) {
        assert_eq!(slot.len(), INODE_SIZE);
        slot.fill(0);
        slot[0..8].copy_from_slice(&self.size.to_le_bytes());
        slot[8] = u8::from(self.allocated);
        slot[9] = u8::from(self.is_dir);
        for (i, d) in self.direct.iter().enumerate() {
            let o = 16 + i * 4;
            slot[o..o + 4].copy_from_slice(&d.to_le_bytes());
        }
        slot[64..68].copy_from_slice(&self.indirect.to_le_bytes());
        slot[68..72].copy_from_slice(&self.dindirect.to_le_bytes());
    }

    /// Decode from an [`INODE_SIZE`]-byte slot.
    pub fn decode(slot: &[u8]) -> FsResult<Inode> {
        if slot.len() != INODE_SIZE {
            return Err(FsError::Invalid("inode slot size"));
        }
        let mut direct = [NO_BLOCK; NDIRECT];
        for (i, d) in direct.iter_mut().enumerate() {
            let o = 16 + i * 4;
            *d = u32::from_le_bytes(slot[o..o + 4].try_into().expect("slice of 4"));
        }
        Ok(Inode {
            size: u64::from_le_bytes(slot[0..8].try_into().expect("slice of 8")),
            allocated: slot[8] != 0,
            is_dir: slot[9] != 0,
            direct,
            indirect: u32::from_le_bytes(slot[64..68].try_into().expect("slice of 4")),
            dindirect: u32::from_le_bytes(slot[68..72].try_into().expect("slice of 4")),
        })
    }
}

/// Where a file-relative block number resolves within an inode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockPath {
    /// `direct[i]`.
    Direct(usize),
    /// `indirect[i]`.
    Indirect(u64),
    /// `dindirect[i][j]`.
    Double(u64, u64),
}

/// Classify a file block index into its pointer path.
pub fn classify(file_block: u64) -> FsResult<BlockPath> {
    if file_block < NDIRECT as u64 {
        return Ok(BlockPath::Direct(file_block as usize));
    }
    let b = file_block - NDIRECT as u64;
    if b < PTRS_PER_BLOCK {
        return Ok(BlockPath::Indirect(b));
    }
    let b = b - PTRS_PER_BLOCK;
    if b < PTRS_PER_BLOCK * PTRS_PER_BLOCK {
        return Ok(BlockPath::Double(b / PTRS_PER_BLOCK, b % PTRS_PER_BLOCK));
    }
    Err(FsError::TooLarge)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let mut ino = Inode::empty();
        ino.size = 123_456;
        ino.direct[0] = 77;
        ino.direct[11] = 99;
        ino.indirect = 1234;
        ino.dindirect = 4321;
        let mut slot = vec![0u8; INODE_SIZE];
        ino.encode_into(&mut slot);
        assert_eq!(Inode::decode(&slot).unwrap(), ino);
    }

    #[test]
    fn zero_slot_is_unallocated() {
        let i = Inode::decode(&[0u8; INODE_SIZE]).unwrap();
        assert!(!i.allocated);
        assert!(!i.is_dir);
        assert_eq!(i.size, 0);
    }

    #[test]
    fn directory_flag_round_trips() {
        let d = Inode::empty_dir();
        assert!(d.is_dir && d.allocated);
        let mut slot = vec![0u8; INODE_SIZE];
        d.encode_into(&mut slot);
        assert!(Inode::decode(&slot).unwrap().is_dir);
    }

    #[test]
    fn classify_boundaries() {
        assert_eq!(classify(0).unwrap(), BlockPath::Direct(0));
        assert_eq!(classify(11).unwrap(), BlockPath::Direct(11));
        assert_eq!(classify(12).unwrap(), BlockPath::Indirect(0));
        assert_eq!(classify(12 + 1023).unwrap(), BlockPath::Indirect(1023));
        assert_eq!(classify(12 + 1024).unwrap(), BlockPath::Double(0, 0));
        assert_eq!(classify(12 + 1024 + 1025).unwrap(), BlockPath::Double(1, 1));
        assert!(classify(Inode::max_blocks()).is_err());
    }

    #[test]
    fn max_file_exceeds_benchmark_needs() {
        // 18 MB (the largest Figure 8 file) is 4608 blocks.
        assert!(Inode::max_blocks() > 5000);
    }

    #[test]
    fn blocks_rounds_up() {
        let mut i = Inode::empty();
        i.size = 1;
        assert_eq!(i.blocks(), 1);
        i.size = 4096;
        assert_eq!(i.blocks(), 1);
        i.size = 4097;
        assert_eq!(i.blocks(), 2);
    }
}
