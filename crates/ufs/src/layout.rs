//! On-disk layout of the update-in-place file system.
//!
//! ```text
//! block 0              superblock
//! block 1 ..           inode bitmap
//! ..                   block bitmap
//! ..                   inode table (128-byte inodes, 32 per block)
//! data_start ..        data blocks
//! ```
//!
//! Like the Solaris UFS in the paper, a slice of the data area (10 %) is
//! reserved: allocation fails once free space dips below it, and `df`-style
//! utilisation counts it as used — the paper notes its Figure 8 x-axis
//! "includes about 12% of reserved free space that is not usable".

use fscore::{FsError, FsResult};

/// Bytes per file-system block (fixed, matching the paper's configuration).
pub const BLOCK_SIZE: usize = 4096;
/// Bytes per on-disk inode.
pub const INODE_SIZE: usize = 128;
/// Inodes per block.
pub const INODES_PER_BLOCK: u64 = (BLOCK_SIZE / INODE_SIZE) as u64;
/// Superblock magic ("UFSs").
pub const SUPER_MAGIC: u32 = 0x5546_5373;
/// Fraction of data blocks kept in reserve (FFS `minfree`).
pub const RESERVE_FRACTION: f64 = 0.10;

/// Computed block layout of a formatted volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Total device blocks.
    pub total_blocks: u64,
    /// Number of inodes.
    pub inode_count: u32,
    /// First block of the inode bitmap.
    pub inode_bitmap_start: u64,
    /// Blocks in the inode bitmap.
    pub inode_bitmap_blocks: u64,
    /// First block of the data-block bitmap.
    pub block_bitmap_start: u64,
    /// Blocks in the data-block bitmap.
    pub block_bitmap_blocks: u64,
    /// First block of the inode table.
    pub inode_table_start: u64,
    /// Blocks in the inode table.
    pub inode_table_blocks: u64,
    /// First data block.
    pub data_start: u64,
    /// Data blocks reserved (unusable, counted as used by `df`).
    pub reserved_blocks: u64,
}

impl Layout {
    /// Compute a layout for a device of `total_blocks` blocks with
    /// `inode_count` inodes.
    pub fn compute(total_blocks: u64, inode_count: u32) -> FsResult<Layout> {
        let bits_per_block = (BLOCK_SIZE * 8) as u64;
        let inode_bitmap_blocks = (inode_count as u64).div_ceil(bits_per_block);
        let block_bitmap_blocks = total_blocks.div_ceil(bits_per_block);
        let inode_table_blocks = (inode_count as u64).div_ceil(INODES_PER_BLOCK);
        let inode_bitmap_start = 1;
        let block_bitmap_start = inode_bitmap_start + inode_bitmap_blocks;
        let inode_table_start = block_bitmap_start + block_bitmap_blocks;
        let data_start = inode_table_start + inode_table_blocks;
        if data_start + 16 > total_blocks {
            return Err(FsError::Invalid("device too small for layout"));
        }
        let data_blocks = total_blocks - data_start;
        let reserved_blocks = (data_blocks as f64 * RESERVE_FRACTION) as u64;
        Ok(Layout {
            total_blocks,
            inode_count,
            inode_bitmap_start,
            inode_bitmap_blocks,
            block_bitmap_start,
            block_bitmap_blocks,
            inode_table_start,
            inode_table_blocks,
            data_start,
            reserved_blocks,
        })
    }

    /// Number of data blocks (including the reserve).
    pub fn data_blocks(&self) -> u64 {
        self.total_blocks - self.data_start
    }

    /// Device block and byte offset holding inode `ino`.
    pub fn inode_location(&self, ino: u32) -> (u64, usize) {
        let block = self.inode_table_start + ino as u64 / INODES_PER_BLOCK;
        let offset = (ino as u64 % INODES_PER_BLOCK) as usize * INODE_SIZE;
        (block, offset)
    }

    /// Serialise as a superblock image.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = vec![0u8; BLOCK_SIZE];
        b[0..4].copy_from_slice(&SUPER_MAGIC.to_le_bytes());
        b[4..12].copy_from_slice(&self.total_blocks.to_le_bytes());
        b[12..16].copy_from_slice(&self.inode_count.to_le_bytes());
        b
    }

    /// Decode and re-derive a layout from a superblock image.
    pub fn decode(buf: &[u8]) -> FsResult<Layout> {
        if buf.len() < 16
            || u32::from_le_bytes(buf[0..4].try_into().expect("len checked")) != SUPER_MAGIC
        {
            return Err(FsError::Invalid("bad superblock"));
        }
        let total = u64::from_le_bytes(buf[4..12].try_into().expect("len checked"));
        let inodes = u32::from_le_bytes(buf[12..16].try_into().expect("len checked"));
        Layout::compute(total, inodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_ordered() {
        let l = Layout::compute(6156, 2048).unwrap();
        assert_eq!(l.inode_bitmap_start, 1);
        assert!(l.block_bitmap_start > l.inode_bitmap_start);
        assert!(l.inode_table_start > l.block_bitmap_start);
        assert!(l.data_start > l.inode_table_start);
        assert_eq!(l.inode_table_blocks, 2048 / 32);
        assert!(l.data_blocks() > 6000);
        assert_eq!(l.reserved_blocks, (l.data_blocks() as f64 * 0.10) as u64);
    }

    #[test]
    fn inode_location_math() {
        let l = Layout::compute(6156, 2048).unwrap();
        let (b0, o0) = l.inode_location(0);
        assert_eq!((b0, o0), (l.inode_table_start, 0));
        let (b, o) = l.inode_location(33);
        assert_eq!(b, l.inode_table_start + 1);
        assert_eq!(o, INODE_SIZE);
    }

    #[test]
    fn superblock_roundtrip() {
        let l = Layout::compute(6156, 2048).unwrap();
        let img = l.encode();
        assert_eq!(Layout::decode(&img).unwrap(), l);
        assert!(Layout::decode(&[0u8; 16]).is_err());
    }

    #[test]
    fn tiny_device_rejected() {
        assert!(Layout::compute(20, 2048).is_err());
    }
}
