//! The update-in-place file system proper.
//!
//! Faithful to the behaviours the paper's benchmarks exercise:
//!
//! * **Synchronous metadata** — creates and deletes write the inode and the
//!   directory block to the device before returning (the Solaris UFS
//!   discipline that makes small-file workloads disk-bound);
//! * **Delayed or synchronous data** — data writes default to the buffer
//!   cache and are flushed, elevator-sorted and clustered, on `sync`; the
//!   benchmarks flip [`fscore::FileSystem::set_sync_writes`] on to model
//!   `O_SYNC` updates;
//! * **Update in place** — overwriting an allocated block rewrites the same
//!   device block, the behaviour eager writing is measured against;
//! * **Locality-aware allocation** — new blocks are taken near the file's
//!   previous block (first-fit from a moving hint), so sequential files lay
//!   out sequentially;
//! * **Read-ahead** — detected sequential reads prefetch a window of blocks
//!   with clustered device reads.

use std::collections::HashMap;
use std::sync::Arc;

use crate::bitmap::Bitmap;
use crate::dir::{Dirent, DIRENT_SIZE};
use crate::inode::{classify, BlockPath, Inode, NO_BLOCK, PTRS_PER_BLOCK};
use crate::layout::{Layout, BLOCK_SIZE, INODE_SIZE};
use disksim::{BlockDevice, DeviceSnapshot, SimClock};
use fscore::{BufferCache, FileId, FileSystem, FsError, FsResult, HostModel};

/// Inode number of the root directory.
const ROOT_INO: u32 = 0;

/// Where a named object lives: its inode, and the directory slot naming it.
#[derive(Debug, Clone, Copy)]
struct PathEntry {
    ino: u32,
    parent: u32,
    slot: u64,
    is_dir: bool,
}

/// Tuning knobs for a [`Ufs`] instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UfsConfig {
    /// Number of inodes to format.
    pub inode_count: u32,
    /// Buffer-cache size in bytes.
    pub cache_bytes: usize,
    /// Make data writes synchronous from the start.
    pub sync_data: bool,
    /// Read-ahead window in blocks (0 disables).
    pub readahead_blocks: u64,
    /// Issue `trim` to the device when files are deleted. Off by default:
    /// the paper's VLD only learns of deletes by overwrite detection.
    pub trim_on_delete: bool,
    /// When the cache fills, flush *all* dirty blocks (sorted) instead of
    /// evicting one at a time — the paper's NVRAM-buffer discipline for the
    /// LFS experiments ("we do not flush to disk until the buffer cache is
    /// full").
    pub flush_on_full: bool,
}

impl Default for UfsConfig {
    fn default() -> Self {
        Self {
            inode_count: 2048,
            cache_bytes: 16 << 20,
            sync_data: false,
            readahead_blocks: 16,
            trim_on_delete: false,
            flush_on_full: false,
        }
    }
}

/// The update-in-place file system over any block device.
pub struct Ufs {
    dev: Box<dyn BlockDevice>,
    host: HostModel,
    layout: Layout,
    cfg: UfsConfig,
    inode_bm: Bitmap,
    /// Bitmap over the data region (bit 0 = layout.data_start).
    block_bm: Bitmap,
    cache: BufferCache,
    /// Directory index: normalised path → entry location.
    names: HashMap<String, PathEntry>,
    /// Per-directory slot occupancy for O(1) free-slot search.
    dir_slots: HashMap<u32, Vec<bool>>,
    /// Children per directory inode (for empty-directory checks).
    child_count: HashMap<u32, u32>,
    handles: HashMap<FileId, u32>,
    next_handle: FileId,
    /// ino → (last file block read, first un-prefetched file block), for
    /// sequential-read detection and windowed read-ahead.
    seq_state: HashMap<u32, (u64, u64)>,
    /// Moving allocation hint within the data region.
    alloc_hint: u64,
    /// Pointer blocks with delayed slot updates, written through at the
    /// end of the operation (see [`Ufs::flush_pointer_blocks`]).
    dirty_ptrs: std::collections::BTreeSet<u64>,
    sync_data: bool,
    /// Observability sink (disabled by default — a single branch per use).
    metrics: disksim::Metrics,
    /// Causal-span handle shared with the device stack below (cloned from
    /// [`BlockDevice::spans`] at construction, so spans opened here are the
    /// attribution targets for the disk commands the stack issues).
    spans: disksim::Spans,
}

impl Ufs {
    /// Format a fresh file system on `dev` and mount it.
    pub fn format(dev: Box<dyn BlockDevice>, host: HostModel, cfg: UfsConfig) -> FsResult<Ufs> {
        assert_eq!(
            dev.block_size(),
            BLOCK_SIZE,
            "UFS expects 4 KB device blocks"
        );
        let layout = Layout::compute(dev.num_blocks(), cfg.inode_count)?;
        let spans = dev.spans();
        let mut fs = Ufs {
            dev,
            host,
            layout,
            cfg,
            inode_bm: Bitmap::new(cfg.inode_count as u64),
            block_bm: Bitmap::new(layout.data_blocks()),
            cache: BufferCache::with_bytes(cfg.cache_bytes, BLOCK_SIZE),
            names: HashMap::new(),
            dir_slots: HashMap::new(),
            child_count: HashMap::new(),
            handles: HashMap::new(),
            next_handle: 1,
            seq_state: HashMap::new(),
            alloc_hint: 0,
            dirty_ptrs: std::collections::BTreeSet::new(),
            sync_data: cfg.sync_data,
            metrics: disksim::Metrics::default(),
            spans,
        };
        // Superblock, root inode, bitmaps.
        let sp = fs.span_open(disksim::SpanKind::FsOp, "ufs.format");
        fs.dev.write_block(0, &layout.encode())?;
        fs.inode_bm.set(ROOT_INO as u64);
        fs.put_inode(ROOT_INO, &Inode::empty_dir(), true)?;
        fs.dir_slots.insert(ROOT_INO, Vec::new());
        fs.child_count.insert(ROOT_INO, 0);
        fs.flush_bitmaps()?;
        fs.span_close(sp);
        Ok(fs)
    }

    /// Capture the whole mounted system — the device stack below (down to
    /// the simulated media, shared copy-on-write) and every piece of
    /// file-system state (bitmaps, buffer cache, directory index, handles,
    /// allocation hints) — as a `Send + Sync` [`UfsSnapshot`]. Returns
    /// `None` if any device in the stack does not support snapshotting.
    ///
    /// [`UfsSnapshot::restore`] yields an independent system that continues
    /// exactly as this one would; observability handles are not captured (a
    /// restored system starts detached).
    pub fn snapshot(&self) -> Option<UfsSnapshot> {
        Some(UfsSnapshot {
            dev: self.dev.snapshot()?,
            host: self.host,
            layout: self.layout,
            cfg: self.cfg,
            inode_bm: self.inode_bm.clone(),
            block_bm: self.block_bm.clone(),
            cache: self.cache.clone(),
            names: self.names.clone(),
            dir_slots: self.dir_slots.clone(),
            child_count: self.child_count.clone(),
            handles: self.handles.clone(),
            next_handle: self.next_handle,
            seq_state: self.seq_state.clone(),
            alloc_hint: self.alloc_hint,
            dirty_ptrs: self.dirty_ptrs.clone(),
            sync_data: self.sync_data,
        })
    }

    /// Mount an existing file system, rebuilding in-memory state from disk.
    pub fn mount(mut dev: Box<dyn BlockDevice>, host: HostModel) -> FsResult<Ufs> {
        assert_eq!(dev.block_size(), BLOCK_SIZE);
        // Superblock/bitmap loads, the directory walk and the bitmap
        // reconciliation are all recovery-path reads.
        let spans = dev.spans();
        let sp = if spans.is_enabled() {
            spans.open(disksim::SpanKind::Recovery, "ufs.mount", dev.clock().now())
        } else {
            0
        };
        let mut sb = vec![0u8; BLOCK_SIZE];
        dev.read_block(0, &mut sb)?;
        let layout = Layout::decode(&sb)?;
        let cfg = UfsConfig {
            inode_count: layout.inode_count,
            ..UfsConfig::default()
        };
        // Load the bitmaps.
        let mut ibm_bytes = Vec::new();
        for b in 0..layout.inode_bitmap_blocks {
            let mut buf = vec![0u8; BLOCK_SIZE];
            dev.read_block(layout.inode_bitmap_start + b, &mut buf)?;
            ibm_bytes.extend_from_slice(&buf);
        }
        let mut bbm_bytes = Vec::new();
        for b in 0..layout.block_bitmap_blocks {
            let mut buf = vec![0u8; BLOCK_SIZE];
            dev.read_block(layout.block_bitmap_start + b, &mut buf)?;
            bbm_bytes.extend_from_slice(&buf);
        }
        let mut fs = Ufs {
            dev,
            host,
            layout,
            cfg,
            inode_bm: Bitmap::from_bytes(layout.inode_count as u64, &ibm_bytes),
            block_bm: Bitmap::from_bytes(layout.data_blocks(), &bbm_bytes),
            cache: BufferCache::with_bytes(cfg.cache_bytes, BLOCK_SIZE),
            names: HashMap::new(),
            dir_slots: HashMap::new(),
            child_count: HashMap::new(),
            handles: HashMap::new(),
            next_handle: 1,
            seq_state: HashMap::new(),
            alloc_hint: 0,
            dirty_ptrs: std::collections::BTreeSet::new(),
            sync_data: cfg.sync_data,
            metrics: disksim::Metrics::default(),
            spans: spans.clone(),
        };
        fs.load_directories()?;
        fs.reconcile_bitmaps()?;
        fs.span_close(sp);
        Ok(fs)
    }

    /// Crash recovery for the delayed-bitmap discipline: inode and
    /// directory updates are synchronous but bitmap flushes wait for
    /// `sync`, so after a power loss the on-media bitmaps can lag the
    /// metadata. Trusting a stale *free* bit would hand out an inode or
    /// block that reachable metadata already owns (double allocation, then
    /// a dangling dirent once either owner is deleted) — so re-mark
    /// everything reachable from the root as allocated. The opposite
    /// staleness (bits still set for freed objects) is harmless: those
    /// leak until `fsck` reclaims them.
    fn reconcile_bitmaps(&mut self) -> FsResult<()> {
        let mut inos: Vec<u32> = vec![ROOT_INO];
        inos.extend(self.names.values().map(|e| e.ino));
        for ino in inos {
            self.inode_bm.set(ino as u64);
            let inode = self.get_inode(ino)?;
            for blk in self.referenced_blocks(&inode)? {
                // Out-of-range pointers are fsck's to report, not ours to
                // mirror into the bitmap.
                if blk >= self.layout.data_start
                    && blk - self.layout.data_start < self.block_bm.len()
                {
                    self.block_bm.set(blk - self.layout.data_start);
                }
            }
        }
        Ok(())
    }

    /// Every device block `inode` references: data blocks plus the
    /// indirect pointer blocks themselves.
    fn referenced_blocks(&mut self, inode: &Inode) -> FsResult<Vec<u64>> {
        let mut out = Vec::new();
        for &d in &inode.direct {
            if d != NO_BLOCK {
                out.push(d as u64);
            }
        }
        if inode.indirect != NO_BLOCK {
            out.push(inode.indirect as u64);
            out.extend(self.pointer_targets(inode.indirect as u64)?);
        }
        if inode.dindirect != NO_BLOCK {
            out.push(inode.dindirect as u64);
            for p in self.pointer_targets(inode.dindirect as u64)? {
                out.push(p);
                out.extend(self.pointer_targets(p)?);
            }
        }
        Ok(out)
    }

    /// The non-empty pointers stored in an indirect block.
    fn pointer_targets(&mut self, blk: u64) -> FsResult<Vec<u64>> {
        let buf = self.get_block(blk)?;
        let mut ptrs = Vec::new();
        for o in (0..BLOCK_SIZE).step_by(4) {
            let b = u32::from_le_bytes(buf[o..o + 4].try_into().expect("slice of 4"));
            if b != NO_BLOCK {
                ptrs.push(b as u64);
            }
        }
        Ok(ptrs)
    }

    /// Access the underlying device (e.g. to harvest statistics).
    pub fn device(&self) -> &dyn BlockDevice {
        self.dev.as_ref()
    }

    /// Mutable device access.
    pub fn device_mut(&mut self) -> &mut dyn BlockDevice {
        self.dev.as_mut()
    }

    /// Consume the file system, returning the device.
    pub fn into_device(self) -> Box<dyn BlockDevice> {
        self.dev
    }

    /// The computed on-disk layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Attach a metrics registry; buffer-cache hit/miss/dirty gauges are
    /// refreshed on flush and idle (cold paths only).
    pub fn set_metrics(&mut self, metrics: disksim::Metrics) {
        self.metrics = metrics;
        self.update_cache_gauges();
    }

    /// Open a causal span at the current device clock. Returns 0 (no span,
    /// nothing to close) when span tracing is disabled — one branch of cost.
    fn span_open(&self, kind: disksim::SpanKind, label: &'static str) -> u32 {
        if self.spans.is_enabled() {
            self.spans.open(kind, label, self.dev.clock().now())
        } else {
            0
        }
    }

    /// Close a span previously opened by [`Ufs::span_open`].
    fn span_close(&self, sp: u32) {
        if sp != 0 {
            self.spans.close(sp, self.dev.clock().now());
        }
    }

    /// Refresh the cache gauges from the buffer cache's own counters.
    fn update_cache_gauges(&self) {
        if !self.metrics.is_enabled() {
            return;
        }
        let (hits, misses) = self.cache.stats();
        self.metrics.gauge("ufs.cache_hits", hits as i64);
        self.metrics.gauge("ufs.cache_misses", misses as i64);
        self.metrics.gauge("ufs.cache_dirty", self.cache.dirty_count() as i64);
    }

    // ----- low-level block helpers ------------------------------------

    fn cache_insert(&mut self, blk: u64, data: Arc<[u8]>, dirty: bool) -> FsResult<()> {
        if self.cache.is_full()
            && !self.cache.contains(blk)
            && self.cfg.flush_on_full
            && self.cache.dirty_count() * 4 >= self.cache.capacity() * 3
        {
            // NVRAM discipline: once the buffer is substantially dirty,
            // drain it all at once; clean blocks then evict for free.
            self.flush_dirty_sorted()?;
        }
        let mut sp = 0;
        while self.cache.is_full() && !self.cache.contains(blk) {
            let (vb, vd, vdirty) = self
                .cache
                .evict_lru_prefer_clean()
                .expect("full cache is non-empty");
            if vdirty {
                // Open lazily: most evictions find a clean victim and touch
                // no disk, so they should not mint a span record.
                if sp == 0 {
                    sp = self.span_open(disksim::SpanKind::CacheFlush, "ufs.evict");
                }
                self.dev.write_block(vb, &vd)?;
            }
        }
        self.span_close(sp);
        self.cache.insert(blk, data, dirty);
        Ok(())
    }

    /// Read a device block through the cache. The returned handle shares
    /// the cached payload — a hit costs an `Arc` clone, not a 4 KB copy.
    fn get_block(&mut self, blk: u64) -> FsResult<Arc<[u8]>> {
        if let Some(d) = self.cache.get_rc(blk) {
            return Ok(d);
        }
        let mut buf = vec![0u8; BLOCK_SIZE];
        self.dev.read_block(blk, &mut buf)?;
        let data: Arc<[u8]> = buf.into();
        self.cache_insert(blk, Arc::clone(&data), false)?;
        Ok(data)
    }

    /// Write a device block: synchronously (write-through) or delayed.
    fn put_block(&mut self, blk: u64, data: Vec<u8>, sync: bool) -> FsResult<()> {
        let data: Arc<[u8]> = data.into();
        if sync {
            self.dev.write_block(blk, &data)?;
            self.cache_insert(blk, data, false)
        } else {
            self.cache_insert(blk, data, true)
        }
    }

    // ----- inode helpers ----------------------------------------------

    fn get_inode(&mut self, ino: u32) -> FsResult<Inode> {
        let (blk, off) = self.layout.inode_location(ino);
        let buf = self.get_block(blk)?;
        Inode::decode(&buf[off..off + INODE_SIZE])
    }

    fn put_inode(&mut self, ino: u32, inode: &Inode, sync: bool) -> FsResult<()> {
        let (blk, off) = self.layout.inode_location(ino);
        // The block holds other inodes too, so read-modify-write.
        let mut buf = self.get_block(blk)?.to_vec();
        inode.encode_into(&mut buf[off..off + INODE_SIZE]);
        self.put_block(blk, buf, sync)
    }

    // ----- allocation ---------------------------------------------------

    fn usable_free(&self) -> u64 {
        self.block_bm
            .free()
            .saturating_sub(self.layout.reserved_blocks)
    }

    fn alloc_data_block(&mut self, hint: u64) -> FsResult<u64> {
        if self.usable_free() == 0 {
            return Err(FsError::NoSpace);
        }
        let idx = self.block_bm.alloc_from(hint).ok_or(FsError::NoSpace)?;
        self.alloc_hint = idx + 1;
        Ok(self.layout.data_start + idx)
    }

    fn free_data_block(&mut self, blk: u64) {
        debug_assert!(blk >= self.layout.data_start);
        self.block_bm.clear(blk - self.layout.data_start);
        self.cache.remove(blk);
        self.dirty_ptrs.remove(&blk);
        if self.cfg.trim_on_delete {
            let _ = self.dev.trim(blk);
        }
    }

    /// Resolve the device block backing `file_block` of `inode`, allocating
    /// data and indirect blocks as needed. Returns the device block and
    /// whether the inode itself changed.
    fn resolve_block(
        &mut self,
        inode: &mut Inode,
        file_block: u64,
        allocate: bool,
    ) -> FsResult<Option<u64>> {
        let hint = self.alloc_hint;
        match classify(file_block)? {
            BlockPath::Direct(i) => {
                if inode.direct[i] == NO_BLOCK {
                    if !allocate {
                        return Ok(None);
                    }
                    inode.direct[i] = self.alloc_data_block(hint)? as u32;
                }
                Ok(Some(inode.direct[i] as u64))
            }
            BlockPath::Indirect(i) => {
                if inode.indirect == NO_BLOCK {
                    if !allocate {
                        return Ok(None);
                    }
                    let b = self.alloc_data_block(hint)?;
                    // Pointer blocks are metadata: written through before
                    // anything on media can reference them. An inode block
                    // can reach the media early (a synchronous update to a
                    // neighbouring inode carries the whole block), so a
                    // cached-only pointer block would leave an on-media
                    // inode pointing at stale garbage after a crash.
                    self.put_block(b, vec![0u8; BLOCK_SIZE], true)?;
                    inode.indirect = b as u32;
                }
                self.resolve_via(inode.indirect as u64, i, allocate, false)
            }
            BlockPath::Double(i, j) => {
                if inode.dindirect == NO_BLOCK {
                    if !allocate {
                        return Ok(None);
                    }
                    let b = self.alloc_data_block(hint)?;
                    self.put_block(b, vec![0u8; BLOCK_SIZE], true)?;
                    inode.dindirect = b as u32;
                }
                let l1 = match self.resolve_via(inode.dindirect as u64, i, allocate, true)? {
                    Some(b) => b,
                    None => return Ok(None),
                };
                self.resolve_via(l1, j, allocate, false)
            }
        }
    }

    /// Look up (or allocate) slot `idx` inside the pointer block `ptr_blk`.
    /// `child_is_ptr` says whether a freshly allocated child is itself a
    /// pointer block (a level-1 indirect) rather than a data block.
    fn resolve_via(
        &mut self,
        ptr_blk: u64,
        idx: u64,
        allocate: bool,
        child_is_ptr: bool,
    ) -> FsResult<Option<u64>> {
        debug_assert!(idx < PTRS_PER_BLOCK);
        let mut buf = self.get_block(ptr_blk)?.to_vec();
        let o = idx as usize * 4;
        let cur = u32::from_le_bytes(buf[o..o + 4].try_into().expect("slice of 4"));
        if cur != NO_BLOCK {
            return Ok(Some(cur as u64));
        }
        if !allocate {
            return Ok(None);
        }
        let b = self.alloc_data_block(self.alloc_hint)?;
        // A pointer-block child is zeroed on media before this slot can
        // reference it; data children are overwritten by the caller and may
        // stay delayed (a crash then leaves a pointer to stale data in an
        // unsynced file, which recovery semantics allow).
        self.put_block(b, vec![0u8; BLOCK_SIZE], child_is_ptr)?;
        buf[o..o + 4].copy_from_slice(&(b as u32).to_le_bytes());
        // The slot update is metadata but need not hit the media per slot:
        // it is delayed here and written through once per operation
        // ([`Ufs::flush_pointer_blocks`]), before the inode that leads to
        // it can reach the media.
        self.put_block(ptr_blk, buf, false)?;
        self.dirty_ptrs.insert(ptr_blk);
        Ok(Some(b))
    }

    /// Write through every pointer block with delayed slot updates. Called
    /// at the end of each mutating operation so on-media metadata is always
    /// structurally consistent: an inode block can reach the media at any
    /// later point (a synchronous update to a neighbouring inode carries
    /// the whole block, and cache pressure evicts dirty blocks), and the
    /// pointer chain it references must already be there.
    fn flush_pointer_blocks(&mut self) -> FsResult<()> {
        while let Some(&blk) = self.dirty_ptrs.iter().next() {
            self.dirty_ptrs.remove(&blk);
            if let Some((data, dirty)) = self.cache.remove(blk) {
                if dirty {
                    self.dev.write_block(blk, &data)?;
                }
                self.cache.insert(blk, data, false);
            }
        }
        Ok(())
    }

    // ----- directories ----------------------------------------------------

    /// Normalise a path: strip leading/trailing separators, reject empty
    /// names and empty segments, validate every component.
    fn normalize(path: &str) -> FsResult<String> {
        let trimmed = path.trim_matches('/');
        if trimmed.is_empty() {
            return Err(FsError::Invalid("empty path"));
        }
        for seg in trimmed.split('/') {
            Dirent::check_name(seg)?;
        }
        Ok(trimmed.to_string())
    }

    /// Split a normalised path into (parent path, leaf name).
    fn split_parent(path: &str) -> (Option<&str>, &str) {
        match path.rfind('/') {
            Some(i) => (Some(&path[..i]), &path[i + 1..]),
            None => (None, path),
        }
    }

    /// The inode of the directory that should contain `path`'s leaf.
    fn parent_dir_ino(&self, path: &str) -> FsResult<u32> {
        match Self::split_parent(path).0 {
            None => Ok(ROOT_INO),
            Some(parent) => {
                let e = self.names.get(parent).ok_or(FsError::NotFound)?;
                if !e.is_dir {
                    return Err(FsError::Invalid("path component is not a directory"));
                }
                Ok(e.ino)
            }
        }
    }

    /// Rebuild the in-memory directory index by walking the tree from the
    /// root (used at mount).
    fn load_directories(&mut self) -> FsResult<()> {
        self.dir_slots.insert(ROOT_INO, Vec::new());
        self.child_count.insert(ROOT_INO, 0);
        let mut stack: Vec<(u32, String)> = vec![(ROOT_INO, String::new())];
        while let Some((dir_ino, prefix)) = stack.pop() {
            let entries = self.read_dir_entries(dir_ino)?;
            let slots = entries
                .iter()
                .map(|(s, _)| *s)
                .max()
                .map(|m| m + 1)
                .unwrap_or(0);
            let mut occupancy = vec![false; slots as usize];
            for (slot, e) in entries {
                occupancy[slot as usize] = true;
                let path = if prefix.is_empty() {
                    e.name.clone()
                } else {
                    format!("{prefix}/{}", e.name)
                };
                let child = self.get_inode(e.ino)?;
                self.names.insert(
                    path.clone(),
                    PathEntry {
                        ino: e.ino,
                        parent: dir_ino,
                        slot,
                        is_dir: child.is_dir,
                    },
                );
                *self.child_count.entry(dir_ino).or_insert(0) += 1;
                if child.is_dir {
                    self.dir_slots.entry(e.ino).or_default();
                    self.child_count.entry(e.ino).or_insert(0);
                    stack.push((e.ino, path));
                }
            }
            let occ = self.dir_slots.entry(dir_ino).or_default();
            *occ = occupancy;
        }
        Ok(())
    }

    /// All live entries of a directory, as (slot, entry).
    fn read_dir_entries(&mut self, dir_ino: u32) -> FsResult<Vec<(u64, Dirent)>> {
        let mut dir = self.get_inode(dir_ino)?;
        let entries = dir.size / DIRENT_SIZE as u64;
        let per_block = (BLOCK_SIZE / DIRENT_SIZE) as u64;
        let mut out = Vec::new();
        for blk_idx in 0..dir.blocks() {
            let Some(dev_blk) = self.resolve_block(&mut dir, blk_idx, false)? else {
                continue;
            };
            let buf = self.get_block(dev_blk)?;
            for s in 0..per_block {
                let slot_idx = blk_idx * per_block + s;
                if slot_idx >= entries {
                    break;
                }
                let o = s as usize * DIRENT_SIZE;
                if let Some(e) = Dirent::decode(&buf[o..o + DIRENT_SIZE]) {
                    out.push((slot_idx, e));
                }
            }
        }
        Ok(out)
    }

    /// Write a directory slot (synchronously — metadata) and keep the
    /// directory inode's size current.
    fn write_dir_slot(
        &mut self,
        dir_ino: u32,
        slot_idx: u64,
        entry: Option<&Dirent>,
    ) -> FsResult<()> {
        let per_block = (BLOCK_SIZE / DIRENT_SIZE) as u64;
        let file_block = slot_idx / per_block;
        let mut dir = self.get_inode(dir_ino)?;
        let dev_blk = self
            .resolve_block(&mut dir, file_block, true)?
            .ok_or(FsError::NoSpace)?;
        let mut buf = self.get_block(dev_blk)?.to_vec();
        let o = (slot_idx % per_block) as usize * DIRENT_SIZE;
        match entry {
            Some(e) => e.encode_into(&mut buf[o..o + DIRENT_SIZE]),
            None => Dirent::clear_slot(&mut buf[o..o + DIRENT_SIZE]),
        }
        self.put_block(dev_blk, buf, true)?;
        let needed = (slot_idx + 1) * DIRENT_SIZE as u64;
        if needed > dir.size {
            dir.size = needed;
            self.put_inode(dir_ino, &dir, true)?;
        }
        Ok(())
    }

    fn free_dir_slot(&mut self, dir_ino: u32) -> u64 {
        let occ = self.dir_slots.entry(dir_ino).or_default();
        match occ.iter().position(|used| !used) {
            Some(i) => i as u64,
            None => {
                occ.push(false);
                (occ.len() - 1) as u64
            }
        }
    }

    /// Allocate an inode + directory entry for `path` (file or directory).
    fn create_entry(&mut self, path: &str, is_dir: bool) -> FsResult<PathEntry> {
        let path = Self::normalize(path)?;
        if self.names.contains_key(&path) {
            return Err(FsError::Exists);
        }
        let parent = self.parent_dir_ino(&path)?;
        let leaf = Self::split_parent(&path).1.to_string();
        let ino = self.inode_bm.alloc_from(1).ok_or(FsError::NoSpace)? as u32;
        // Synchronous metadata: inode first, then the directory entry that
        // makes it reachable (the safe ordering).
        let inode = if is_dir {
            Inode::empty_dir()
        } else {
            Inode::empty()
        };
        self.put_inode(ino, &inode, true)?;
        let slot = self.free_dir_slot(parent);
        self.write_dir_slot(parent, slot, Some(&Dirent { ino, name: leaf }))?;
        self.dir_slots.get_mut(&parent).expect("parent indexed")[slot as usize] = true;
        *self.child_count.entry(parent).or_insert(0) += 1;
        let entry = PathEntry {
            ino,
            parent,
            slot,
            is_dir,
        };
        self.names.insert(path, entry);
        if is_dir {
            self.dir_slots.insert(ino, Vec::new());
            self.child_count.insert(ino, 0);
        }
        Ok(entry)
    }

    /// List the names directly inside a directory (`"/"` or `""` for the
    /// root), in unspecified order.
    pub fn list(&self, path: &str) -> FsResult<Vec<String>> {
        let dir_ino = match path.trim_matches('/') {
            "" => ROOT_INO,
            p => {
                let e = self.names.get(p).ok_or(FsError::NotFound)?;
                if !e.is_dir {
                    return Err(FsError::Invalid("not a directory"));
                }
                e.ino
            }
        };
        Ok(self
            .names
            .iter()
            .filter(|(_, e)| e.parent == dir_ino)
            .map(|(p, _)| p.rsplit('/').next().expect("non-empty path").to_string())
            .collect())
    }

    // ----- misc -----------------------------------------------------------

    fn ino_of(&self, f: FileId) -> FsResult<u32> {
        self.handles.get(&f).copied().ok_or(FsError::BadHandle)
    }

    fn flush_bitmaps(&mut self) -> FsResult<()> {
        for chunk in self.inode_bm.take_dirty_chunks() {
            let blk = self.layout.inode_bitmap_start + chunk as u64;
            let data = self.inode_bm.chunk_bytes(chunk);
            self.dev.write_block(blk, &data)?;
        }
        for chunk in self.block_bm.take_dirty_chunks() {
            let blk = self.layout.block_bitmap_start + chunk as u64;
            let data = self.block_bm.chunk_bytes(chunk);
            self.dev.write_block(blk, &data)?;
        }
        Ok(())
    }

    /// Flush dirty cache blocks in elevator order, clustering physically
    /// contiguous runs into single device commands. Each flushed block also
    /// costs host CPU — the flush runs through the same user-level code as
    /// any other block write.
    fn flush_dirty_sorted(&mut self) -> FsResult<()> {
        let dirty = self.cache.take_dirty_sorted();
        self.host.charge(&self.dev.clock(), dirty.len() as u64);
        // Only mint a span when there is actually something to write back.
        let sp = if dirty.is_empty() {
            0
        } else {
            self.span_open(disksim::SpanKind::CacheFlush, "ufs.flush")
        };
        let r = self.flush_runs(&dirty);
        self.span_close(sp);
        r?;
        self.update_cache_gauges();
        Ok(())
    }

    /// Write a sorted dirty-block list as clustered runs (the I/O half of
    /// [`Ufs::flush_dirty_sorted`], split out so the flush span brackets it).
    fn flush_runs(&mut self, dirty: &[u64]) -> FsResult<()> {
        let mut i = 0;
        while i < dirty.len() {
            let mut j = i + 1;
            while j < dirty.len() && dirty[j] == dirty[j - 1] + 1 {
                j += 1;
            }
            // Assemble the cluster straight out of the cache — the payloads
            // were never cloned out of it.
            let mut run = Vec::with_capacity((j - i) * BLOCK_SIZE);
            for &blk in &dirty[i..j] {
                run.extend_from_slice(self.cache.peek(blk).expect("flushed block cached"));
            }
            self.dev.write_blocks(dirty[i], &run)?;
            i = j;
        }
        Ok(())
    }

    /// Prefetch file blocks `[from, to)` with clustered device reads.
    fn readahead(&mut self, inode: &mut Inode, from: u64, to: u64) -> FsResult<()> {
        let mut targets = Vec::new();
        for fb in from..to {
            if let Some(db) = self.resolve_block(inode, fb, false)? {
                if !self.cache.contains(db) {
                    targets.push(db);
                }
            }
        }
        targets.sort_unstable();
        targets.dedup();
        let mut i = 0;
        while i < targets.len() {
            let mut j = i + 1;
            while j < targets.len() && targets[j] == targets[j - 1] + 1 {
                j += 1;
            }
            let n = j - i;
            let mut buf = vec![0u8; n * BLOCK_SIZE];
            self.dev.read_blocks(targets[i], &mut buf)?;
            for (k, chunk) in buf.chunks(BLOCK_SIZE).enumerate() {
                self.cache_insert(targets[i] + k as u64, chunk.into(), false)?;
            }
            i = j;
        }
        Ok(())
    }

    // ----- FsOp bodies ---------------------------------------------------
    //
    // The `FileSystem` entry points below are thin span wrappers around
    // these inner methods so `?` early returns cannot leak an open span.

    fn sync_inner(&mut self) -> FsResult<()> {
        self.flush_dirty_sorted()?;
        self.flush_bitmaps()?;
        // Let the device persist its own buffered state (the LLD's
        // partial-segment flush and checkpoint; a no-op for write-through
        // devices).
        self.dev.flush()?;
        Ok(())
    }

    fn write_inner(&mut self, f: FileId, offset: u64, data: &[u8]) -> FsResult<()> {
        let ino = self.ino_of(f)?;
        let blocks = (data.len() as u64).div_ceil(BLOCK_SIZE as u64);
        self.host.charge(&self.dev.clock(), blocks);
        if data.is_empty() {
            return Ok(());
        }
        let mut inode = self.get_inode(ino)?;
        // Extending past EOF exposes bytes of already-allocated blocks in
        // the gap `[size, offset)` — the old last block's tail, and (after
        // a crash persisted pointers but not delayed data) even whole
        // blocks past it — which can hold garbage rather than zero
        // padding. Zero whatever is allocated there so the gap reads as
        // the hole POSIX promises; unallocated blocks already do.
        if offset > inode.size {
            let bs = BLOCK_SIZE as u64;
            for fb in inode.size / bs..=(offset - 1) / bs {
                let Some(dev_blk) = self.resolve_block(&mut inode, fb, false)? else {
                    continue;
                };
                let lo = inode.size.saturating_sub(fb * bs).min(bs) as usize;
                let hi = (offset - fb * bs).min(bs) as usize;
                if lo >= hi {
                    continue;
                }
                let mut buf = self.get_block(dev_blk)?.to_vec();
                buf[lo..hi].fill(0);
                self.put_block(dev_blk, buf, self.sync_data)?;
            }
        }
        let mut pos = 0usize;
        let mut off = offset;
        let mut inode_dirty = false;
        while pos < data.len() {
            let fb = off / BLOCK_SIZE as u64;
            let in_block = (off % BLOCK_SIZE as u64) as usize;
            let n = (BLOCK_SIZE - in_block).min(data.len() - pos);
            let had = {
                // Track whether this write allocates, to know the inode changed.
                let before = self.resolve_block(&mut inode, fb, false)?;
                before.is_some()
            };
            let dev_blk = self
                .resolve_block(&mut inode, fb, true)?
                .ok_or(FsError::NoSpace)?;
            if !had {
                inode_dirty = true;
            }
            let mut buf = if n == BLOCK_SIZE {
                vec![0u8; BLOCK_SIZE]
            } else if had {
                // Partial overwrite: read-modify-write needs its own copy.
                self.get_block(dev_blk)?.to_vec()
            } else {
                vec![0u8; BLOCK_SIZE]
            };
            buf[in_block..in_block + n].copy_from_slice(&data[pos..pos + n]);
            self.put_block(dev_blk, buf, self.sync_data)?;
            pos += n;
            off += n as u64;
        }
        if off > inode.size {
            inode.size = off;
            inode_dirty = true;
        }
        // Pointer blocks updated by this write reach the media before the
        // inode that references them possibly can.
        self.flush_pointer_blocks()?;
        if inode_dirty {
            // File-growth metadata is delayed (flushed on sync), matching
            // the FFS discipline for write-path updates.
            self.put_inode(ino, &inode, false)?;
        }
        Ok(())
    }

    fn read_inner(&mut self, f: FileId, offset: u64, out: &mut [u8]) -> FsResult<usize> {
        let ino = self.ino_of(f)?;
        let blocks = (out.len() as u64).div_ceil(BLOCK_SIZE as u64);
        self.host.charge(&self.dev.clock(), blocks);
        let mut inode = self.get_inode(ino)?;
        if offset >= inode.size {
            return Ok(0);
        }
        let want = out.len().min((inode.size - offset) as usize);
        let mut pos = 0usize;
        let mut off = offset;
        while pos < want {
            let fb = off / BLOCK_SIZE as u64;
            let in_block = (off % BLOCK_SIZE as u64) as usize;
            let n = (BLOCK_SIZE - in_block).min(want - pos);
            match self.resolve_block(&mut inode, fb, false)? {
                Some(dev_blk) => {
                    let buf = self.get_block(dev_blk)?;
                    out[pos..pos + n].copy_from_slice(&buf[in_block..in_block + n]);
                }
                None => out[pos..pos + n].fill(0), // hole
            }
            // Sequential-read detection drives windowed read-ahead: once a
            // run is detected, keep the next `readahead_blocks` blocks
            // prefetched, refilling in batches when the window half-drains.
            let ra = self.cfg.readahead_blocks;
            let (last_fb, mut ra_until) =
                self.seq_state.get(&ino).copied().unwrap_or((u64::MAX, 0));
            let sequential = fb == last_fb.wrapping_add(1) || fb == last_fb;
            if sequential && ra > 0 && fb + ra / 2 + 1 >= ra_until {
                let start = ra_until.max(fb + 1);
                let end = (fb + 1 + ra).min(inode.blocks());
                if start < end {
                    self.readahead(&mut inode, start, end)?;
                    ra_until = end;
                }
            }
            self.seq_state.insert(ino, (fb, ra_until));
            pos += n;
            off += n as u64;
        }
        Ok(want)
    }

    fn delete_inner(&mut self, name: &str) -> FsResult<()> {
        self.host.charge(&self.dev.clock(), 0);
        let path = Self::normalize(name)?;
        let e = *self.names.get(&path).ok_or(FsError::NotFound)?;
        if e.is_dir && self.child_count.get(&e.ino).copied().unwrap_or(0) > 0 {
            return Err(FsError::Invalid("directory not empty"));
        }
        let (ino, slot) = (e.ino, e.slot);
        // Directory entry out first (synchronously), then free the inode
        // and blocks.
        self.write_dir_slot(e.parent, slot, None)?;
        self.names.remove(&path);
        self.dir_slots.get_mut(&e.parent).expect("parent indexed")[slot as usize] = false;
        *self.child_count.entry(e.parent).or_insert(1) -= 1;
        if e.is_dir {
            self.dir_slots.remove(&ino);
            self.child_count.remove(&ino);
        }
        let mut inode = self.get_inode(ino)?;
        // Free all data + indirect blocks.
        for i in 0..crate::inode::NDIRECT {
            if inode.direct[i] != NO_BLOCK {
                self.free_data_block(inode.direct[i] as u64);
            }
        }
        if inode.indirect != NO_BLOCK {
            let buf = self.get_block(inode.indirect as u64)?;
            for o in (0..BLOCK_SIZE).step_by(4) {
                let b = u32::from_le_bytes(buf[o..o + 4].try_into().expect("slice of 4"));
                if b != NO_BLOCK {
                    self.free_data_block(b as u64);
                }
            }
            self.free_data_block(inode.indirect as u64);
        }
        if inode.dindirect != NO_BLOCK {
            let l1 = self.get_block(inode.dindirect as u64)?;
            for o in (0..BLOCK_SIZE).step_by(4) {
                let p = u32::from_le_bytes(l1[o..o + 4].try_into().expect("slice of 4"));
                if p != NO_BLOCK {
                    let l2 = self.get_block(p as u64)?;
                    for o2 in (0..BLOCK_SIZE).step_by(4) {
                        let b = u32::from_le_bytes(l2[o2..o2 + 4].try_into().expect("slice of 4"));
                        if b != NO_BLOCK {
                            self.free_data_block(b as u64);
                        }
                    }
                    self.free_data_block(p as u64);
                }
            }
            self.free_data_block(inode.dindirect as u64);
        }
        inode = Inode::empty();
        inode.allocated = false;
        self.put_inode(ino, &inode, true)?;
        self.inode_bm.clear(ino as u64);
        self.seq_state.remove(&ino);
        Ok(())
    }

    fn rename_inner(&mut self, from: &str, to: &str) -> FsResult<()> {
        self.host.charge(&self.dev.clock(), 0);
        let from = Self::normalize(from)?;
        let to = Self::normalize(to)?;
        let e = *self.names.get(&from).ok_or(FsError::NotFound)?;
        if e.is_dir {
            return Err(FsError::Invalid("directory rename not supported"));
        }
        if from == to {
            return Ok(());
        }
        if self.names.contains_key(&to) {
            return Err(FsError::Exists);
        }
        let new_parent = self.parent_dir_ino(&to)?;
        let leaf = Self::split_parent(&to).1.to_string();
        // Synchronous metadata, safe ordering: the new entry lands first,
        // then the old one is cleared — a crash in between leaves the file
        // reachable under both names, never under none.
        let slot = self.free_dir_slot(new_parent);
        self.write_dir_slot(new_parent, slot, Some(&Dirent { ino: e.ino, name: leaf }))?;
        self.dir_slots.get_mut(&new_parent).expect("parent indexed")[slot as usize] = true;
        *self.child_count.entry(new_parent).or_insert(0) += 1;
        self.write_dir_slot(e.parent, e.slot, None)?;
        self.dir_slots.get_mut(&e.parent).expect("parent indexed")[e.slot as usize] = false;
        *self.child_count.entry(e.parent).or_insert(1) -= 1;
        self.names.remove(&from);
        self.names.insert(
            to,
            PathEntry {
                ino: e.ino,
                parent: new_parent,
                slot,
                is_dir: false,
            },
        );
        Ok(())
    }
}

/// A point-in-time image of a mounted [`Ufs`] and the whole device stack
/// under it. Plain data and `Send + Sync`: captured once, it can be
/// restored concurrently from many worker threads, each restore yielding a
/// fully independent system whose media pages and cache payloads are
/// shared copy-on-write with the snapshot and with sibling forks.
pub struct UfsSnapshot {
    dev: Box<dyn DeviceSnapshot>,
    host: HostModel,
    layout: Layout,
    cfg: UfsConfig,
    inode_bm: Bitmap,
    block_bm: Bitmap,
    cache: BufferCache,
    names: HashMap<String, PathEntry>,
    dir_slots: HashMap<u32, Vec<bool>>,
    child_count: HashMap<u32, u32>,
    handles: HashMap<FileId, u32>,
    next_handle: FileId,
    seq_state: HashMap<u32, (u64, u64)>,
    alloc_hint: u64,
    dirty_ptrs: std::collections::BTreeSet<u64>,
    sync_data: bool,
}

// Snapshots must cross thread boundaries: the whole point is to capture
// once and restore from parallel figure-cell workers.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<UfsSnapshot>();
};

impl UfsSnapshot {
    /// Materialise an independent live system from this snapshot.
    pub fn restore(&self) -> Ufs {
        let dev = self.dev.restore();
        let spans = dev.spans();
        Ufs {
            dev,
            host: self.host,
            layout: self.layout,
            cfg: self.cfg,
            inode_bm: self.inode_bm.clone(),
            block_bm: self.block_bm.clone(),
            cache: self.cache.clone(),
            names: self.names.clone(),
            dir_slots: self.dir_slots.clone(),
            child_count: self.child_count.clone(),
            handles: self.handles.clone(),
            next_handle: self.next_handle,
            seq_state: self.seq_state.clone(),
            alloc_hint: self.alloc_hint,
            dirty_ptrs: self.dirty_ptrs.clone(),
            sync_data: self.sync_data,
            metrics: disksim::Metrics::disabled(),
            spans,
        }
    }

    /// Simulation events the captured system had consumed. A fork credits
    /// these to the global counter ([`disksim::clock::add_events`]) so the
    /// per-figure event totals match a from-scratch rebuild exactly.
    pub fn local_events(&self) -> u64 {
        self.dev.local_events()
    }
}

impl FileSystem for Ufs {
    fn create(&mut self, name: &str) -> FsResult<FileId> {
        self.host.charge(&self.dev.clock(), 0);
        let sp = self.span_open(disksim::SpanKind::FsOp, "ufs.create");
        let r = self.create_entry(name, false);
        self.span_close(sp);
        let entry = r?;
        let h = self.next_handle;
        self.next_handle += 1;
        self.handles.insert(h, entry.ino);
        Ok(h)
    }

    fn mkdir(&mut self, path: &str) -> FsResult<()> {
        self.host.charge(&self.dev.clock(), 0);
        let sp = self.span_open(disksim::SpanKind::FsOp, "ufs.mkdir");
        let r = self.create_entry(path, true);
        self.span_close(sp);
        r?;
        Ok(())
    }

    fn open(&mut self, name: &str) -> FsResult<FileId> {
        self.host.charge(&self.dev.clock(), 0);
        let path = Self::normalize(name)?;
        let e = *self.names.get(&path).ok_or(FsError::NotFound)?;
        if e.is_dir {
            return Err(FsError::Invalid("is a directory"));
        }
        let h = self.next_handle;
        self.next_handle += 1;
        self.handles.insert(h, e.ino);
        Ok(h)
    }

    fn write(&mut self, f: FileId, offset: u64, data: &[u8]) -> FsResult<()> {
        let sp = self.span_open(disksim::SpanKind::FsOp, "ufs.write");
        let r = self.write_inner(f, offset, data);
        self.span_close(sp);
        r
    }

    fn read(&mut self, f: FileId, offset: u64, out: &mut [u8]) -> FsResult<usize> {
        let sp = self.span_open(disksim::SpanKind::FsOp, "ufs.read");
        let r = self.read_inner(f, offset, out);
        self.span_close(sp);
        r
    }

    fn delete(&mut self, name: &str) -> FsResult<()> {
        let sp = self.span_open(disksim::SpanKind::FsOp, "ufs.delete");
        let r = self.delete_inner(name);
        self.span_close(sp);
        r
    }

    fn rename(&mut self, from: &str, to: &str) -> FsResult<()> {
        let sp = self.span_open(disksim::SpanKind::FsOp, "ufs.rename");
        let r = self.rename_inner(from, to);
        self.span_close(sp);
        r
    }

    fn file_size(&mut self, f: FileId) -> FsResult<u64> {
        let ino = self.ino_of(f)?;
        Ok(self.get_inode(ino)?.size)
    }

    fn sync(&mut self) -> FsResult<()> {
        self.host.charge(&self.dev.clock(), 0);
        let sp = self.span_open(disksim::SpanKind::FsOp, "ufs.sync");
        let r = self.sync_inner();
        self.span_close(sp);
        r
    }

    fn drop_caches(&mut self) {
        self.cache.drop_clean();
        self.seq_state.clear();
    }

    fn set_sync_writes(&mut self, on: bool) {
        self.sync_data = on;
    }

    fn idle(&mut self, ns: u64) {
        let clock = self.dev.clock();
        let end = clock.now() + ns;
        if self.cfg.flush_on_full {
            // NVRAM discipline: use idle time for background write-back so
            // a later burst finds the buffer empty — with enough idle, the
            // flush (and any cleaning it triggers below) is entirely masked
            // and the foreground runs at memory speed.
            let sp = if self.cache.dirty_count() > 0 {
                self.span_open(disksim::SpanKind::CacheFlush, "ufs.idle_writeback")
            } else {
                0
            };
            while clock.now() < end && self.cache.dirty_count() > 0 {
                let dirty = self.cache.take_dirty_sorted();
                for blk in dirty {
                    if clock.now() >= end {
                        // Out of idle budget: re-dirty in place, no copy.
                        self.cache.mark_dirty(blk);
                        continue;
                    }
                    self.host.charge(&clock, 1);
                    let data = self.cache.peek(blk).expect("flushed block cached");
                    if self.dev.write_block(blk, data).is_err() {
                        self.cache.mark_dirty(blk);
                    }
                }
                if clock.now() >= end {
                    break;
                }
            }
            self.span_close(sp);
            self.update_cache_gauges();
        }
        let remaining = end.saturating_sub(clock.now());
        fscore::fs::grant_idle(self.dev.as_mut(), remaining);
        clock.advance_to(end);
    }

    fn clock(&self) -> SimClock {
        self.dev.clock()
    }

    fn utilization(&self) -> f64 {
        // df-style: the reserve counts as used.
        (self.block_bm.used() + self.layout.reserved_blocks) as f64
            / self.layout.data_blocks() as f64
    }

    fn free_blocks(&self) -> u64 {
        self.usable_free()
    }
}
