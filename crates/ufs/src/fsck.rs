//! `fsck` — offline consistency checking and repair for the
//! update-in-place file system.
//!
//! Walks the on-disk structures (superblock, bitmaps, inode table, root
//! directory, block pointers) and cross-checks them:
//!
//! * every referenced block is inside the data area and referenced once;
//! * the block bitmap covers exactly the referenced blocks;
//! * the inode bitmap covers exactly the directory-reachable inodes
//!   (plus the root);
//! * directory entries point at allocated inodes;
//! * file sizes are representable by the pointer tree.
//!
//! [`fsck`] only reports. [`fsck_repair`] additionally fixes what it finds
//! with the classic conservative moves — drop the bad reference, remove the
//! dangling name, release the orphan, rebuild the bitmaps from the
//! reference walk — chosen so that repair *converges*: a second pass over a
//! repaired volume finds nothing. (On a sync-metadata UFS a crash alone
//! never needs more than bitmap reconciliation; the severe classes only
//! appear when the media itself lies, which is exactly what the
//! model-checking harness's fault layer injects.)

use std::collections::HashMap;

use crate::dir::{Dirent, DIRENT_SIZE};
use crate::inode::{Inode, NO_BLOCK, PTRS_PER_BLOCK};
use crate::layout::{Layout, BLOCK_SIZE, INODE_SIZE};
use disksim::BlockDevice;
use fscore::FsResult;

/// The root directory's inode, mirrored here to keep `fsck` standalone.
const ROOT_CHECK_INO: u32 = 0;

/// One consistency violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsckError {
    /// A block pointer outside the data area.
    PointerOutOfRange {
        /// Owning inode.
        ino: u32,
        /// The bad device block.
        block: u64,
    },
    /// Two pointers reference the same block.
    DoubleReference {
        /// The block referenced twice.
        block: u64,
        /// First owner.
        first_ino: u32,
        /// Second owner.
        second_ino: u32,
    },
    /// Bitmap says free but the block is referenced.
    ReferencedButFree {
        /// The block in question.
        block: u64,
    },
    /// Bitmap says used but nothing references the block (a leak).
    Leaked {
        /// The leaked block.
        block: u64,
    },
    /// A directory entry points at an unallocated inode.
    DanglingDirent {
        /// The entry's name.
        name: String,
        /// The missing inode.
        ino: u32,
    },
    /// An allocated inode is unreachable from the root directory.
    OrphanInode {
        /// The orphan.
        ino: u32,
    },
    /// An allocated inode whose inode-bitmap bit is clear.
    InodeMarkedFree {
        /// The inode in question.
        ino: u32,
    },
    /// An inode-bitmap bit set for an unallocated inode slot.
    InodeMarkedUsed {
        /// The inode in question.
        ino: u32,
    },
    /// Inode size exceeds what its pointers can address.
    SizeBeyondPointers {
        /// The inode.
        ino: u32,
    },
}

/// Result of a check: counts plus the detailed errors.
#[derive(Debug, Default)]
pub struct FsckReport {
    /// Files reachable from the root directory.
    pub files: u32,
    /// Data blocks referenced (including indirect blocks).
    pub blocks_referenced: u64,
    /// Violations found (empty = consistent).
    pub errors: Vec<FsckError>,
    /// Human-readable repair actions taken (always empty for [`fsck`]).
    pub repairs: Vec<String>,
}

impl FsckReport {
    /// Did the volume pass?
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Check the volume on `dev`. Reads raw blocks; does not require (or
/// trust) a mounted file system.
pub fn fsck(dev: &mut dyn BlockDevice) -> FsResult<FsckReport> {
    run(dev, false)
}

/// Check the volume on `dev` and repair every violation found. The report
/// lists the errors as detected (pre-repair) and the actions taken; a
/// subsequent [`fsck`] pass over the repaired volume is clean. Must not be
/// run under a mounted file system (a mounted cache would go stale).
pub fn fsck_repair(dev: &mut dyn BlockDevice) -> FsResult<FsckReport> {
    run(dev, true)
}

/// Record a block reference; `true` if it was accepted (in range and the
/// first reference), `false` if it was reported as bad.
fn reference(
    layout: &Layout,
    report: &mut FsckReport,
    owner: &mut HashMap<u64, u32>,
    ino: u32,
    block: u64,
) -> bool {
    if block < layout.data_start || block >= layout.total_blocks {
        report
            .errors
            .push(FsckError::PointerOutOfRange { ino, block });
        return false;
    }
    if let Some(&first) = owner.get(&block) {
        report.errors.push(FsckError::DoubleReference {
            block,
            first_ino: first,
            second_ino: ino,
        });
        return false;
    }
    owner.insert(block, ino);
    report.blocks_referenced += 1;
    true
}

/// Read a pointer block and vet its entries, returning the surviving
/// children. In repair mode bad entries are cleared on the media.
#[allow(clippy::too_many_arguments)]
fn vet_ptr_block(
    dev: &mut dyn BlockDevice,
    layout: &Layout,
    report: &mut FsckReport,
    owner: &mut HashMap<u64, u32>,
    ino: u32,
    ptr_blk: u64,
    repair: bool,
) -> FsResult<Vec<u64>> {
    let mut pbuf = vec![0u8; BLOCK_SIZE];
    dev.read_block(ptr_blk, &mut pbuf)?;
    let mut kids = Vec::new();
    let mut dirty = false;
    for i in 0..PTRS_PER_BLOCK as usize {
        let b =
            u32::from_le_bytes(pbuf[i * 4..i * 4 + 4].try_into().expect("slice of 4")) as u64;
        if b == NO_BLOCK as u64 {
            continue;
        }
        if reference(layout, report, owner, ino, b) {
            kids.push(b);
        } else if repair {
            pbuf[i * 4..i * 4 + 4].fill(0);
            dirty = true;
            report
                .repairs
                .push(format!("ino {ino}: cleared bad pointer to block {b}"));
        }
    }
    if dirty {
        dev.write_block(ptr_blk, &pbuf)?;
    }
    Ok(kids)
}

fn run(dev: &mut dyn BlockDevice, repair: bool) -> FsResult<FsckReport> {
    let mut report = FsckReport::default();
    let mut buf = vec![0u8; BLOCK_SIZE];

    // Superblock → layout.
    dev.read_block(0, &mut buf)?;
    let layout = Layout::decode(&buf)?;

    // Load the bitmaps.
    let block_bm = read_bitmap(
        dev,
        layout.block_bitmap_start,
        layout.block_bitmap_blocks,
        layout.data_blocks(),
    )?;
    let inode_bm = read_bitmap(
        dev,
        layout.inode_bitmap_start,
        layout.inode_bitmap_blocks,
        layout.inode_count as u64,
    )?;

    // Walk every allocated inode's pointers, recording references (and, in
    // repair mode, dropping bad ones in place).
    let mut owner: HashMap<u64, u32> = HashMap::new();
    let mut reachable_inodes = vec![false; layout.inode_count as usize];
    reachable_inodes[0] = true;

    let mut inodes: Vec<Option<Inode>> = vec![None; layout.inode_count as usize];
    // Data blocks of each inode in file order (needed to walk directories).
    let mut file_blocks: HashMap<u32, Vec<u64>> = HashMap::new();
    for ino in 0..layout.inode_count {
        let (blk, off) = layout.inode_location(ino);
        dev.read_block(blk, &mut buf)?;
        let mut inode = Inode::decode(&buf[off..off + INODE_SIZE])?;
        if !inode.allocated {
            continue;
        }
        let mut ino_dirty = false;
        if inode.blocks() > Inode::max_blocks() {
            report.errors.push(FsckError::SizeBeyondPointers { ino });
            if repair {
                inode.size = Inode::max_blocks() * BLOCK_SIZE as u64;
                ino_dirty = true;
                report
                    .repairs
                    .push(format!("ino {ino}: size clamped to pointer capacity"));
            }
        }
        let mut data: Vec<u64> = Vec::new();
        for d in inode.direct.iter_mut() {
            if *d == NO_BLOCK {
                continue;
            }
            if reference(&layout, &mut report, &mut owner, ino, *d as u64) {
                data.push(*d as u64);
            } else if repair {
                report
                    .repairs
                    .push(format!("ino {ino}: cleared bad direct pointer to block {d}"));
                *d = NO_BLOCK;
                ino_dirty = true;
            }
        }
        if inode.indirect != NO_BLOCK {
            if reference(&layout, &mut report, &mut owner, ino, inode.indirect as u64) {
                data.extend(vet_ptr_block(
                    dev,
                    &layout,
                    &mut report,
                    &mut owner,
                    ino,
                    inode.indirect as u64,
                    repair,
                )?);
            } else if repair {
                report.repairs.push(format!(
                    "ino {ino}: cleared bad indirect pointer to block {}",
                    inode.indirect
                ));
                inode.indirect = NO_BLOCK;
                ino_dirty = true;
            }
        }
        if inode.dindirect != NO_BLOCK {
            if reference(&layout, &mut report, &mut owner, ino, inode.dindirect as u64) {
                let l1s = vet_ptr_block(
                    dev,
                    &layout,
                    &mut report,
                    &mut owner,
                    ino,
                    inode.dindirect as u64,
                    repair,
                )?;
                for l1 in l1s {
                    data.extend(vet_ptr_block(
                        dev,
                        &layout,
                        &mut report,
                        &mut owner,
                        ino,
                        l1,
                        repair,
                    )?);
                }
            } else if repair {
                report.repairs.push(format!(
                    "ino {ino}: cleared bad double-indirect pointer to block {}",
                    inode.dindirect
                ));
                inode.dindirect = NO_BLOCK;
                ino_dirty = true;
            }
        }
        if ino_dirty {
            // `buf` still holds this inode's table block (pointer blocks
            // were vetted through their own buffers), so neighbours in the
            // same block are preserved.
            inode.encode_into(&mut buf[off..off + INODE_SIZE]);
            dev.write_block(blk, &buf)?;
        }
        file_blocks.insert(ino, data);
        inodes[ino as usize] = Some(inode);
    }

    // Walk the directory tree: reachability + dangling entries. (Indirect
    // directory blocks are handled through the per-inode block lists.)
    let per_block = (BLOCK_SIZE / DIRENT_SIZE) as u64;
    let mut queue: Vec<u32> = vec![ROOT_CHECK_INO];
    let mut visited_dirs = vec![false; layout.inode_count as usize];
    visited_dirs[ROOT_CHECK_INO as usize] = true;
    while let Some(dir_ino) = queue.pop() {
        let Some(dir) = inodes[dir_ino as usize] else {
            continue;
        };
        let entries = dir.size / DIRENT_SIZE as u64;
        let blocks = file_blocks.get(&dir_ino).cloned().unwrap_or_default();
        for (blk_idx, dev_blk) in blocks.iter().enumerate() {
            dev.read_block(*dev_blk, &mut buf)?;
            let mut dirty = false;
            for s in 0..per_block {
                let idx = blk_idx as u64 * per_block + s;
                if idx >= entries {
                    break;
                }
                let o = s as usize * DIRENT_SIZE;
                if let Some(e) = Dirent::decode(&buf[o..o + DIRENT_SIZE]) {
                    match inodes.get(e.ino as usize).and_then(|i| *i) {
                        Some(child) => {
                            reachable_inodes[e.ino as usize] = true;
                            if child.is_dir {
                                if !visited_dirs[e.ino as usize] {
                                    visited_dirs[e.ino as usize] = true;
                                    queue.push(e.ino);
                                }
                            } else {
                                report.files += 1;
                            }
                        }
                        None => {
                            report.errors.push(FsckError::DanglingDirent {
                                name: e.name.clone(),
                                ino: e.ino,
                            });
                            if repair {
                                Dirent::clear_slot(&mut buf[o..o + DIRENT_SIZE]);
                                dirty = true;
                                report.repairs.push(format!(
                                    "dir ino {dir_ino}: removed dangling entry '{}' → ino {}",
                                    e.name, e.ino
                                ));
                            }
                        }
                    }
                }
            }
            if dirty {
                dev.write_block(*dev_blk, &buf)?;
            }
        }
    }

    // Orphans: allocated inodes no directory entry names. Repair releases
    // them (inode slot zeroed, their blocks dropped from the reference set
    // so the bitmap rebuild frees them). An orphaned directory's children
    // are themselves unreachable and released by the same sweep.
    for ino in 0..layout.inode_count as usize {
        if inodes[ino].is_some() && !reachable_inodes[ino] {
            report
                .errors
                .push(FsckError::OrphanInode { ino: ino as u32 });
            if repair {
                let (blk, off) = layout.inode_location(ino as u32);
                dev.read_block(blk, &mut buf)?;
                buf[off..off + INODE_SIZE].fill(0);
                dev.write_block(blk, &buf)?;
                let before = owner.len();
                owner.retain(|_, o| *o != ino as u32);
                report.blocks_referenced -= (before - owner.len()) as u64;
                inodes[ino] = None;
                report
                    .repairs
                    .push(format!("ino {ino}: released orphan inode and its blocks"));
            }
        }
    }

    // Bitmap cross-check over the data area.
    for block in layout.data_start..layout.total_blocks {
        let bit = block_bm[(block - layout.data_start) as usize];
        let referenced = owner.contains_key(&block);
        match (bit, referenced) {
            (false, true) => report.errors.push(FsckError::ReferencedButFree { block }),
            (true, false) => report.errors.push(FsckError::Leaked { block }),
            _ => {}
        }
    }
    // Inode bitmap vs allocation.
    for ino in 0..layout.inode_count {
        let bit = inode_bm[ino as usize];
        let alloc = inodes[ino as usize].is_some();
        if bit != alloc {
            report.errors.push(if alloc {
                FsckError::InodeMarkedFree { ino }
            } else {
                FsckError::InodeMarkedUsed { ino }
            });
        }
    }
    // In repair mode both bitmaps are rewritten from the reference walk
    // whenever anything at all was wrong: pointer/orphan fixes above change
    // what the correct bitmaps are, so recomputing is the only move that
    // converges.
    if repair && !report.errors.is_empty() {
        let block_bits: Vec<bool> = (0..layout.data_blocks())
            .map(|i| owner.contains_key(&(layout.data_start + i)))
            .collect();
        write_bitmap(
            dev,
            layout.block_bitmap_start,
            layout.block_bitmap_blocks,
            &block_bits,
        )?;
        let inode_bits: Vec<bool> = (0..layout.inode_count as usize)
            .map(|i| inodes[i].is_some())
            .collect();
        write_bitmap(
            dev,
            layout.inode_bitmap_start,
            layout.inode_bitmap_blocks,
            &inode_bits,
        )?;
        report
            .repairs
            .push("bitmaps rebuilt from the reference walk".into());
    }
    Ok(report)
}

fn read_bitmap(
    dev: &mut dyn BlockDevice,
    start: u64,
    blocks: u64,
    bits: u64,
) -> FsResult<Vec<bool>> {
    let mut bytes = Vec::new();
    let mut buf = vec![0u8; BLOCK_SIZE];
    for b in 0..blocks {
        dev.read_block(start + b, &mut buf)?;
        bytes.extend_from_slice(&buf);
    }
    Ok((0..bits)
        .map(|i| bytes[(i / 8) as usize] >> (i % 8) & 1 == 1)
        .collect())
}

fn write_bitmap(
    dev: &mut dyn BlockDevice,
    start: u64,
    blocks: u64,
    bits: &[bool],
) -> FsResult<()> {
    let mut bytes = vec![0u8; blocks as usize * BLOCK_SIZE];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            bytes[i / 8] |= 1 << (i % 8);
        }
    }
    for blk in 0..blocks {
        let chunk = &bytes[blk as usize * BLOCK_SIZE..(blk as usize + 1) * BLOCK_SIZE];
        dev.write_block(start + blk, chunk)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ufs, UfsConfig};
    use disksim::{DiskSpec, RegularDisk, SimClock};
    use fscore::{FileSystem, HostModel};

    fn populated() -> Ufs {
        let dev = RegularDisk::new(DiskSpec::st19101_sim(), SimClock::new(), BLOCK_SIZE);
        let mut fs =
            Ufs::format(Box::new(dev), HostModel::instant(), UfsConfig::default()).unwrap();
        for i in 0..20 {
            let f = fs.create(&format!("f{i}")).unwrap();
            fs.write(f, 0, &vec![i as u8; 10_000 * (i as usize + 1)])
                .unwrap();
        }
        fs.delete("f3").unwrap();
        fs.sync().unwrap();
        fs
    }

    /// Repair the volume and insist the second pass finds nothing.
    fn repair_converges(dev: &mut dyn BlockDevice) -> FsckReport {
        let repaired = fsck_repair(dev).unwrap();
        assert!(
            !repaired.repairs.is_empty(),
            "repair took no action for: {:?}",
            repaired.errors
        );
        let second = fsck(dev).unwrap();
        assert!(
            second.is_clean(),
            "second pass after repair still dirty: {:?}",
            second.errors
        );
        repaired
    }

    #[test]
    fn clean_volume_passes() {
        let mut fs = populated();
        let report = fsck(fs.device_mut()).unwrap();
        assert!(report.is_clean(), "errors: {:?}", report.errors);
        assert_eq!(report.files, 19);
        assert!(report.blocks_referenced > 19);
    }

    #[test]
    fn large_files_with_indirect_blocks_pass() {
        let dev = RegularDisk::new(DiskSpec::st19101_sim(), SimClock::new(), BLOCK_SIZE);
        let mut fs =
            Ufs::format(Box::new(dev), HostModel::instant(), UfsConfig::default()).unwrap();
        let f = fs.create("big").unwrap();
        fs.write(f, 0, &vec![7u8; 6 << 20]).unwrap(); // double-indirect range
        fs.sync().unwrap();
        let report = fsck(fs.device_mut()).unwrap();
        assert!(report.is_clean(), "errors: {:?}", report.errors);
    }

    #[test]
    fn corrupted_pointer_detected_and_repaired() {
        let mut fs = populated();
        // Corrupt a direct pointer in inode 1's slot to point outside the
        // data area.
        let layout = *fs.layout();
        let (blk, off) = layout.inode_location(1);
        let dev = fs.device_mut();
        let mut buf = vec![0u8; BLOCK_SIZE];
        dev.read_block(blk, &mut buf).unwrap();
        let mut inode = Inode::decode(&buf[off..off + INODE_SIZE]).unwrap();
        inode.direct[0] = 1; // superblock area: out of range
        inode.encode_into(&mut buf[off..off + INODE_SIZE]);
        dev.write_block(blk, &buf).unwrap();
        let report = fsck(dev).unwrap();
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, FsckError::PointerOutOfRange { ino: 1, .. })));
        repair_converges(dev);
    }

    #[test]
    fn bitmap_mismatch_detected_and_repaired() {
        let mut fs = populated();
        let layout = *fs.layout();
        let dev = fs.device_mut();
        // Flip one bit in the block bitmap: a used block becomes "free".
        let mut buf = vec![0u8; BLOCK_SIZE];
        dev.read_block(layout.block_bitmap_start, &mut buf).unwrap();
        // Find a set bit and clear it.
        let pos = buf
            .iter()
            .position(|&b| b != 0)
            .expect("some blocks are allocated");
        let bit = buf[pos].trailing_zeros();
        buf[pos] &= !(1 << bit);
        dev.write_block(layout.block_bitmap_start, &buf).unwrap();
        let report = fsck(dev).unwrap();
        assert!(
            report
                .errors
                .iter()
                .any(|e| matches!(e, FsckError::ReferencedButFree { .. })),
            "errors: {:?}",
            report.errors
        );
        repair_converges(dev);
    }

    #[test]
    fn leaked_block_detected_and_repaired() {
        let mut fs = populated();
        let layout = *fs.layout();
        let dev = fs.device_mut();
        let mut buf = vec![0u8; BLOCK_SIZE];
        dev.read_block(layout.block_bitmap_start, &mut buf).unwrap();
        // Set the bitmap bit of the volume's very last data block, which
        // nothing references at this fill level.
        let last = layout.data_blocks() - 1;
        buf[(last / 8) as usize] |= 1 << (last % 8);
        dev.write_block(
            layout.block_bitmap_start + last / 8 / BLOCK_SIZE as u64,
            &buf,
        )
        .unwrap();
        let report = fsck(dev).unwrap();
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, FsckError::Leaked { .. })));
        repair_converges(dev);
    }

    #[test]
    fn orphan_inode_detected_and_repaired() {
        let mut fs = populated();
        let layout = *fs.layout();
        let dev = fs.device_mut();
        // Erase 'f5' from the root directory, leaving its inode allocated
        // but unreachable. The root's entries live in inode 0's first data
        // block at this fill level.
        let mut buf = vec![0u8; BLOCK_SIZE];
        let (blk, off) = layout.inode_location(ROOT_CHECK_INO);
        dev.read_block(blk, &mut buf).unwrap();
        let root = Inode::decode(&buf[off..off + INODE_SIZE]).unwrap();
        let dir_blk = root.direct[0] as u64;
        dev.read_block(dir_blk, &mut buf).unwrap();
        let slot = (0..BLOCK_SIZE / DIRENT_SIZE)
            .find(|s| {
                Dirent::decode(&buf[s * DIRENT_SIZE..(s + 1) * DIRENT_SIZE])
                    .is_some_and(|e| e.name == "f5")
            })
            .expect("'f5' present in the root block");
        Dirent::clear_slot(&mut buf[slot * DIRENT_SIZE..(slot + 1) * DIRENT_SIZE]);
        dev.write_block(dir_blk, &buf).unwrap();

        let report = fsck(dev).unwrap();
        assert!(
            report
                .errors
                .iter()
                .any(|e| matches!(e, FsckError::OrphanInode { .. })),
            "errors: {:?}",
            report.errors
        );
        let repaired = repair_converges(dev);
        // The orphan's blocks were released along with the inode: the
        // second pass has nothing leaked, and the file count drops by one.
        assert!(repaired
            .repairs
            .iter()
            .any(|r| r.contains("released orphan")));
        assert_eq!(fsck(dev).unwrap().files, 18);
    }

    #[test]
    fn dangling_dirent_detected_and_repaired() {
        let mut fs = populated();
        let layout = *fs.layout();
        let dev = fs.device_mut();
        // Zero 'f7''s inode slot directly: its directory entry now points
        // at an unallocated inode, and its blocks leak.
        let report = fsck(dev).unwrap();
        assert!(report.is_clean());
        // Find f7's ino through the root directory.
        let mut buf = vec![0u8; BLOCK_SIZE];
        let (blk, off) = layout.inode_location(ROOT_CHECK_INO);
        dev.read_block(blk, &mut buf).unwrap();
        let root = Inode::decode(&buf[off..off + INODE_SIZE]).unwrap();
        let dir_blk = root.direct[0] as u64;
        dev.read_block(dir_blk, &mut buf).unwrap();
        let ino = (0..BLOCK_SIZE / DIRENT_SIZE)
            .find_map(|s| {
                Dirent::decode(&buf[s * DIRENT_SIZE..(s + 1) * DIRENT_SIZE])
                    .filter(|e| e.name == "f7")
                    .map(|e| e.ino)
            })
            .expect("'f7' present in the root block");
        let (blk, off) = layout.inode_location(ino);
        dev.read_block(blk, &mut buf).unwrap();
        buf[off..off + INODE_SIZE].fill(0);
        dev.write_block(blk, &buf).unwrap();

        let report = fsck(dev).unwrap();
        assert!(
            report
                .errors
                .iter()
                .any(|e| matches!(e, FsckError::DanglingDirent { .. })),
            "errors: {:?}",
            report.errors
        );
        let repaired = repair_converges(dev);
        assert!(repaired
            .repairs
            .iter()
            .any(|r| r.contains("removed dangling entry 'f7'")));
    }

    #[test]
    fn inode_bitmap_mismatch_detected_and_repaired() {
        let mut fs = populated();
        let layout = *fs.layout();
        let dev = fs.device_mut();
        // Clear an allocated inode's bitmap bit (ino 1 is in use), and set
        // the bit of the table's last slot (free at this fill level).
        let mut buf = vec![0u8; BLOCK_SIZE];
        dev.read_block(layout.inode_bitmap_start, &mut buf).unwrap();
        buf[0] &= !(1 << 1);
        let last = layout.inode_count as usize - 1;
        buf[last / 8] |= 1 << (last % 8);
        dev.write_block(layout.inode_bitmap_start, &buf).unwrap();
        let report = fsck(dev).unwrap();
        assert!(
            report
                .errors
                .iter()
                .any(|e| matches!(e, FsckError::InodeMarkedFree { ino: 1 })),
            "errors: {:?}",
            report.errors
        );
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, FsckError::InodeMarkedUsed { .. })));
        repair_converges(dev);
    }

    #[test]
    fn double_reference_detected_and_repaired() {
        let mut fs = populated();
        let layout = *fs.layout();
        let dev = fs.device_mut();
        // Point inode 2's first direct slot at inode 1's first block.
        let mut buf = vec![0u8; BLOCK_SIZE];
        let (blk1, off1) = layout.inode_location(1);
        dev.read_block(blk1, &mut buf).unwrap();
        let victim = Inode::decode(&buf[off1..off1 + INODE_SIZE]).unwrap().direct[0];
        let (blk2, off2) = layout.inode_location(2);
        dev.read_block(blk2, &mut buf).unwrap();
        let mut thief = Inode::decode(&buf[off2..off2 + INODE_SIZE]).unwrap();
        let stolen_from = thief.direct[0];
        assert_ne!(stolen_from, victim);
        thief.direct[0] = victim;
        thief.encode_into(&mut buf[off2..off2 + INODE_SIZE]);
        dev.write_block(blk2, &buf).unwrap();
        let report = fsck(dev).unwrap();
        assert!(
            report
                .errors
                .iter()
                .any(|e| matches!(e, FsckError::DoubleReference { .. })),
            "errors: {:?}",
            report.errors
        );
        // Repair drops the duplicate reference (the thief's block also
        // leaks, mopped up by the bitmap rebuild) and converges.
        repair_converges(dev);
    }

    #[test]
    fn fsck_works_through_the_vld_too() {
        // The VLD is transparent: the same checker runs over the remapped
        // volume unchanged.
        let dev = vlog_core::Vld::format(
            DiskSpec::st19101_sim(),
            SimClock::new(),
            vlog_core::VldConfig::default(),
        );
        let mut fs =
            Ufs::format(Box::new(dev), HostModel::instant(), UfsConfig::default()).unwrap();
        for i in 0..10 {
            let f = fs.create(&format!("v{i}")).unwrap();
            fs.write(f, 0, &vec![1u8; 50_000]).unwrap();
        }
        fs.sync().unwrap();
        let report = fsck(fs.device_mut()).unwrap();
        assert!(report.is_clean(), "errors: {:?}", report.errors);
        assert_eq!(report.files, 10);
    }
}
