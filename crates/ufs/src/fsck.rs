//! `fsck` — offline consistency checking for the update-in-place file
//! system.
//!
//! Walks the on-disk structures (superblock, bitmaps, inode table, root
//! directory, block pointers) and cross-checks them:
//!
//! * every referenced block is inside the data area and referenced once;
//! * the block bitmap covers exactly the referenced blocks;
//! * the inode bitmap covers exactly the directory-reachable inodes
//!   (plus the root);
//! * directory entries point at allocated inodes;
//! * file sizes are representable by the pointer tree.
//!
//! Unlike the real `fsck`, this one only reports; the simulation has no
//! power failures mid-metadata-update to repair (UFS crash consistency is
//! exactly what the paper's synchronous-metadata discipline buys).

use std::collections::HashMap;

use crate::dir::{Dirent, DIRENT_SIZE};
use crate::inode::{Inode, NO_BLOCK, PTRS_PER_BLOCK};
use crate::layout::{Layout, BLOCK_SIZE, INODE_SIZE};
use disksim::BlockDevice;
use fscore::FsResult;

/// The root directory's inode, mirrored here to keep `fsck` standalone.
const ROOT_CHECK_INO: u32 = 0;

/// One consistency violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsckError {
    /// A block pointer outside the data area.
    PointerOutOfRange {
        /// Owning inode.
        ino: u32,
        /// The bad device block.
        block: u64,
    },
    /// Two pointers reference the same block.
    DoubleReference {
        /// The block referenced twice.
        block: u64,
        /// First owner.
        first_ino: u32,
        /// Second owner.
        second_ino: u32,
    },
    /// Bitmap says free but the block is referenced.
    ReferencedButFree {
        /// The block in question.
        block: u64,
    },
    /// Bitmap says used but nothing references the block (a leak).
    Leaked {
        /// The leaked block.
        block: u64,
    },
    /// A directory entry points at an unallocated inode.
    DanglingDirent {
        /// The entry's name.
        name: String,
        /// The missing inode.
        ino: u32,
    },
    /// An allocated inode is unreachable from the root directory.
    OrphanInode {
        /// The orphan.
        ino: u32,
    },
    /// Inode size exceeds what its pointers can address.
    SizeBeyondPointers {
        /// The inode.
        ino: u32,
    },
}

/// Result of a check: counts plus the detailed errors.
#[derive(Debug, Default)]
pub struct FsckReport {
    /// Files reachable from the root directory.
    pub files: u32,
    /// Data blocks referenced (including indirect blocks).
    pub blocks_referenced: u64,
    /// Violations found (empty = consistent).
    pub errors: Vec<FsckError>,
}

impl FsckReport {
    /// Did the volume pass?
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Check the volume on `dev`. Reads raw blocks; does not require (or
/// trust) a mounted file system.
pub fn fsck(dev: &mut dyn BlockDevice) -> FsResult<FsckReport> {
    let mut report = FsckReport::default();
    let mut buf = vec![0u8; BLOCK_SIZE];

    // Superblock → layout.
    dev.read_block(0, &mut buf)?;
    let layout = Layout::decode(&buf)?;

    // Load the bitmaps.
    let block_bm = read_bitmap(
        dev,
        layout.block_bitmap_start,
        layout.block_bitmap_blocks,
        layout.data_blocks(),
    )?;
    let inode_bm = read_bitmap(
        dev,
        layout.inode_bitmap_start,
        layout.inode_bitmap_blocks,
        layout.inode_count as u64,
    )?;

    // Walk every allocated inode's pointers, recording references.
    let mut owner: HashMap<u64, u32> = HashMap::new();
    let mut reachable_inodes = vec![false; layout.inode_count as usize];
    reachable_inodes[0] = true;
    let reference =
        |report: &mut FsckReport, owner: &mut HashMap<u64, u32>, ino: u32, block: u64| {
            if block < layout.data_start || block >= layout.total_blocks {
                report
                    .errors
                    .push(FsckError::PointerOutOfRange { ino, block });
                return;
            }
            if let Some(&first) = owner.get(&block) {
                report.errors.push(FsckError::DoubleReference {
                    block,
                    first_ino: first,
                    second_ino: ino,
                });
            } else {
                owner.insert(block, ino);
                report.blocks_referenced += 1;
            }
        };

    let mut inodes: Vec<Option<Inode>> = vec![None; layout.inode_count as usize];
    // Data blocks of each inode in file order (needed to walk directories).
    let mut file_blocks: HashMap<u32, Vec<u64>> = HashMap::new();
    for ino in 0..layout.inode_count {
        let (blk, off) = layout.inode_location(ino);
        dev.read_block(blk, &mut buf)?;
        let inode = Inode::decode(&buf[off..off + INODE_SIZE])?;
        if !inode.allocated {
            continue;
        }
        if inode.blocks() > Inode::max_blocks() {
            report.errors.push(FsckError::SizeBeyondPointers { ino });
        }
        let mut data: Vec<u64> = Vec::new();
        for &d in inode.direct.iter().filter(|&&d| d != NO_BLOCK) {
            reference(&mut report, &mut owner, ino, d as u64);
            data.push(d as u64);
        }
        let walk_ptr_block = |report: &mut FsckReport,
                              owner: &mut HashMap<u64, u32>,
                              dev: &mut dyn BlockDevice,
                              pb: u64|
         -> FsResult<Vec<u64>> {
            let mut pbuf = vec![0u8; BLOCK_SIZE];
            dev.read_block(pb, &mut pbuf)?;
            reference(report, owner, ino, pb);
            Ok((0..PTRS_PER_BLOCK as usize)
                .map(|i| {
                    u32::from_le_bytes(pbuf[i * 4..i * 4 + 4].try_into().expect("slice of 4"))
                        as u64
                })
                .filter(|&b| b != NO_BLOCK as u64)
                .collect())
        };
        if inode.indirect != NO_BLOCK {
            for b in walk_ptr_block(&mut report, &mut owner, dev, inode.indirect as u64)? {
                reference(&mut report, &mut owner, ino, b);
                data.push(b);
            }
        }
        if inode.dindirect != NO_BLOCK {
            for l1 in walk_ptr_block(&mut report, &mut owner, dev, inode.dindirect as u64)? {
                for b in walk_ptr_block(&mut report, &mut owner, dev, l1)? {
                    reference(&mut report, &mut owner, ino, b);
                    data.push(b);
                }
            }
        }
        file_blocks.insert(ino, data);
        inodes[ino as usize] = Some(inode);
    }

    // Walk the directory tree: reachability + dangling entries. (Indirect
    // directory blocks are handled through the per-inode block lists.)
    let per_block = (BLOCK_SIZE / DIRENT_SIZE) as u64;
    let mut queue: Vec<u32> = vec![ROOT_CHECK_INO];
    let mut visited_dirs = vec![false; layout.inode_count as usize];
    visited_dirs[ROOT_CHECK_INO as usize] = true;
    while let Some(dir_ino) = queue.pop() {
        let Some(dir) = inodes[dir_ino as usize] else {
            continue;
        };
        let entries = dir.size / DIRENT_SIZE as u64;
        let blocks = file_blocks.get(&dir_ino).cloned().unwrap_or_default();
        for (blk_idx, dev_blk) in blocks.iter().enumerate() {
            dev.read_block(*dev_blk, &mut buf)?;
            for s in 0..per_block {
                let idx = blk_idx as u64 * per_block + s;
                if idx >= entries {
                    break;
                }
                let o = s as usize * DIRENT_SIZE;
                if let Some(e) = Dirent::decode(&buf[o..o + DIRENT_SIZE]) {
                    match inodes.get(e.ino as usize).and_then(|i| *i) {
                        Some(child) => {
                            reachable_inodes[e.ino as usize] = true;
                            if child.is_dir {
                                if !visited_dirs[e.ino as usize] {
                                    visited_dirs[e.ino as usize] = true;
                                    queue.push(e.ino);
                                }
                            } else {
                                report.files += 1;
                            }
                        }
                        None => report.errors.push(FsckError::DanglingDirent {
                            name: e.name,
                            ino: e.ino,
                        }),
                    }
                }
            }
        }
    }

    // Orphans: allocated inodes no directory entry names.
    for (ino, inode) in inodes.iter().enumerate() {
        if inode.is_some() && !reachable_inodes[ino] {
            report
                .errors
                .push(FsckError::OrphanInode { ino: ino as u32 });
        }
    }

    // Bitmap cross-check over the data area.
    for block in layout.data_start..layout.total_blocks {
        let bit = block_bm[(block - layout.data_start) as usize];
        let referenced = owner.contains_key(&block);
        match (bit, referenced) {
            (false, true) => report.errors.push(FsckError::ReferencedButFree { block }),
            (true, false) => report.errors.push(FsckError::Leaked { block }),
            _ => {}
        }
    }
    // Inode bitmap vs allocation.
    for ino in 0..layout.inode_count as usize {
        let bit = inode_bm[ino];
        let alloc = inodes[ino].is_some();
        if bit != alloc {
            report.errors.push(if alloc {
                FsckError::ReferencedButFree { block: ino as u64 }
            } else {
                FsckError::Leaked { block: ino as u64 }
            });
        }
    }
    Ok(report)
}

fn read_bitmap(
    dev: &mut dyn BlockDevice,
    start: u64,
    blocks: u64,
    bits: u64,
) -> FsResult<Vec<bool>> {
    let mut bytes = Vec::new();
    let mut buf = vec![0u8; BLOCK_SIZE];
    for b in 0..blocks {
        dev.read_block(start + b, &mut buf)?;
        bytes.extend_from_slice(&buf);
    }
    Ok((0..bits)
        .map(|i| bytes[(i / 8) as usize] >> (i % 8) & 1 == 1)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ufs, UfsConfig};
    use disksim::{DiskSpec, RegularDisk, SimClock};
    use fscore::{FileSystem, HostModel};

    fn populated() -> Ufs {
        let dev = RegularDisk::new(DiskSpec::st19101_sim(), SimClock::new(), BLOCK_SIZE);
        let mut fs =
            Ufs::format(Box::new(dev), HostModel::instant(), UfsConfig::default()).unwrap();
        for i in 0..20 {
            let f = fs.create(&format!("f{i}")).unwrap();
            fs.write(f, 0, &vec![i as u8; 10_000 * (i as usize + 1)])
                .unwrap();
        }
        fs.delete("f3").unwrap();
        fs.sync().unwrap();
        fs
    }

    #[test]
    fn clean_volume_passes() {
        let mut fs = populated();
        let report = fsck(fs.device_mut()).unwrap();
        assert!(report.is_clean(), "errors: {:?}", report.errors);
        assert_eq!(report.files, 19);
        assert!(report.blocks_referenced > 19);
    }

    #[test]
    fn large_files_with_indirect_blocks_pass() {
        let dev = RegularDisk::new(DiskSpec::st19101_sim(), SimClock::new(), BLOCK_SIZE);
        let mut fs =
            Ufs::format(Box::new(dev), HostModel::instant(), UfsConfig::default()).unwrap();
        let f = fs.create("big").unwrap();
        fs.write(f, 0, &vec![7u8; 6 << 20]).unwrap(); // double-indirect range
        fs.sync().unwrap();
        let report = fsck(fs.device_mut()).unwrap();
        assert!(report.is_clean(), "errors: {:?}", report.errors);
    }

    #[test]
    fn corrupted_pointer_detected() {
        let mut fs = populated();
        // Corrupt a direct pointer in inode 1's slot to point outside the
        // data area.
        let layout = *fs.layout();
        let (blk, off) = layout.inode_location(1);
        let dev = fs.device_mut();
        let mut buf = vec![0u8; BLOCK_SIZE];
        dev.read_block(blk, &mut buf).unwrap();
        let mut inode = Inode::decode(&buf[off..off + INODE_SIZE]).unwrap();
        inode.direct[0] = 1; // superblock area: out of range
        inode.encode_into(&mut buf[off..off + INODE_SIZE]);
        dev.write_block(blk, &buf).unwrap();
        let report = fsck(dev).unwrap();
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, FsckError::PointerOutOfRange { ino: 1, .. })));
    }

    #[test]
    fn bitmap_mismatch_detected() {
        let mut fs = populated();
        let layout = *fs.layout();
        let dev = fs.device_mut();
        // Flip one bit in the block bitmap: a used block becomes "free".
        let mut buf = vec![0u8; BLOCK_SIZE];
        dev.read_block(layout.block_bitmap_start, &mut buf).unwrap();
        // Find a set bit and clear it.
        let pos = buf
            .iter()
            .position(|&b| b != 0)
            .expect("some blocks are allocated");
        let bit = buf[pos].trailing_zeros();
        buf[pos] &= !(1 << bit);
        dev.write_block(layout.block_bitmap_start, &buf).unwrap();
        let report = fsck(dev).unwrap();
        assert!(
            report
                .errors
                .iter()
                .any(|e| matches!(e, FsckError::ReferencedButFree { .. })),
            "errors: {:?}",
            report.errors
        );
    }

    #[test]
    fn leaked_block_detected() {
        let mut fs = populated();
        let layout = *fs.layout();
        let dev = fs.device_mut();
        let mut buf = vec![0u8; BLOCK_SIZE];
        dev.read_block(layout.block_bitmap_start, &mut buf).unwrap();
        // Set the bitmap bit of the volume's very last data block, which
        // nothing references at this fill level.
        let last = layout.data_blocks() - 1;
        buf[(last / 8) as usize] |= 1 << (last % 8);
        dev.write_block(
            layout.block_bitmap_start + last / 8 / BLOCK_SIZE as u64,
            &buf,
        )
        .unwrap();
        let report = fsck(dev).unwrap();
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, FsckError::Leaked { .. })));
    }

    #[test]
    fn fsck_works_through_the_vld_too() {
        // The VLD is transparent: the same checker runs over the remapped
        // volume unchanged.
        let dev = vlog_core::Vld::format(
            DiskSpec::st19101_sim(),
            SimClock::new(),
            vlog_core::VldConfig::default(),
        );
        let mut fs =
            Ufs::format(Box::new(dev), HostModel::instant(), UfsConfig::default()).unwrap();
        for i in 0..10 {
            let f = fs.create(&format!("v{i}")).unwrap();
            fs.write(f, 0, &vec![1u8; 50_000]).unwrap();
        }
        fs.sync().unwrap();
        let report = fsck(fs.device_mut()).unwrap();
        assert!(report.is_clean(), "errors: {:?}", report.errors);
        assert_eq!(report.files, 10);
    }
}
