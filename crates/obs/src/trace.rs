//! The event tracer: a bounded ring of per-operation records.
//!
//! One [`TraceEvent`] is emitted per completed disk operation, carrying the
//! virtual-clock completion time, the physical location touched, and the
//! full service-time decomposition (overhead / seek / head switch /
//! rotation / transfer — the paper's Figure 9 categories). Because the
//! simulation is deterministic, two identical runs produce byte-identical
//! JSONL dumps; the determinism tests rely on this.
//!
//! The ring is bounded: when full, the *oldest* event is dropped and a
//! counter records the loss, so a trace can never grow without bound and a
//! truncated trace is detectable rather than silent.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::rc::Rc;

/// What kind of operation an event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A media/buffer read command.
    Read,
    /// A media write command.
    Write,
    /// A bare head movement (no transfer).
    Seek,
    /// An injected fault (from the fault-injection layer).
    Fault,
}

impl OpKind {
    /// Stable lowercase name used in the JSONL dump.
    pub fn as_str(self) -> &'static str {
        match self {
            OpKind::Read => "read",
            OpKind::Write => "write",
            OpKind::Seek => "seek",
            OpKind::Fault => "fault",
        }
    }
}

/// One completed operation.
///
/// All times are nanoseconds of simulated time. The five component fields
/// sum (with `overhead_ns`) to exactly the time the operation consumed, so
/// summing them across a complete trace reproduces the disk's cumulative
/// busy time — the invariant the breakdown tests assert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual-clock time at which the operation completed.
    pub at_ns: u64,
    /// Operation kind.
    pub kind: OpKind,
    /// Index into the tracer's label table ([`Tracer::set_scope`]).
    pub scope: u16,
    /// Id of the causal span the operation was attributed to (0 when no
    /// span was open — see [`crate::span::Spans`]).
    pub span: u32,
    /// First logical sector addressed (0 for bare seeks).
    pub lba: u64,
    /// Sectors transferred (0 for bare seeks).
    pub sectors: u32,
    /// Cylinder of the first run serviced.
    pub cyl: u32,
    /// Track of the first run serviced.
    pub track: u32,
    /// Starting sector (within the track) of the first run.
    pub sector: u32,
    /// Cylinder distance the arm travelled from its previous position.
    pub seek_cyls: u32,
    /// Command/controller overhead component.
    pub overhead_ns: u64,
    /// Arm-movement component.
    pub seek_ns: u64,
    /// Head-select/settle component.
    pub head_switch_ns: u64,
    /// Rotational-delay component.
    pub rotation_ns: u64,
    /// Media/buffer transfer component.
    pub transfer_ns: u64,
}

impl TraceEvent {
    /// Total simulated time the operation consumed.
    pub fn total_ns(&self) -> u64 {
        self.overhead_ns + self.seek_ns + self.head_switch_ns + self.rotation_ns + self.transfer_ns
    }

    /// One JSONL line (no trailing newline). Keys are fixed and ASCII, so
    /// no escaping machinery is needed; `scope` is resolved to its label.
    fn to_json_line(self, labels: &[String]) -> String {
        let scope = labels
            .get(self.scope as usize)
            .map(String::as_str)
            .unwrap_or("");
        let mut s = String::with_capacity(192);
        let _ = write!(
            s,
            "{{\"at\":{},\"kind\":\"{}\",\"scope\":\"{}\",\"span\":{},\"lba\":{},\"sectors\":{},\
             \"cyl\":{},\"track\":{},\"sector\":{},\"seek_cyls\":{},\
             \"overhead_ns\":{},\"seek_ns\":{},\"head_switch_ns\":{},\
             \"rotation_ns\":{},\"transfer_ns\":{}}}",
            self.at_ns,
            self.kind.as_str(),
            scope,
            self.span,
            self.lba,
            self.sectors,
            self.cyl,
            self.track,
            self.sector,
            self.seek_cyls,
            self.overhead_ns,
            self.seek_ns,
            self.head_switch_ns,
            self.rotation_ns,
            self.transfer_ns,
        );
        s
    }
}

#[derive(Debug)]
struct Ring {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    /// Scope label table; `TraceEvent::scope` indexes into it.
    labels: Vec<String>,
    /// Scope stamped onto events recorded from now on.
    current: u16,
}

/// A cheap cloneable handle to a bounded trace ring.
///
/// Producers (the simulated disk, the fault layer) hold an
/// `Option<Tracer>`; consumers (the bench harness, `vlstat`) keep a clone
/// and drain or dump it after the workload. Handles share one ring, so a
/// scope set by the harness applies to events recorded by the disk.
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Rc<RefCell<Ring>>,
}

impl Tracer {
    /// A tracer whose ring holds at most `capacity` events (oldest dropped
    /// first). Capacity 0 is clamped to 1.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            inner: Rc::new(RefCell::new(Ring {
                events: VecDeque::with_capacity(capacity.min(1 << 16)),
                capacity,
                dropped: 0,
                labels: vec![String::new()],
                current: 0,
            })),
        }
    }

    /// Set the scope label stamped onto subsequently recorded events.
    /// Labels are interned: setting the same name twice reuses its index.
    pub fn set_scope(&self, name: &str) {
        let mut r = self.inner.borrow_mut();
        let idx = match r.labels.iter().position(|l| l == name) {
            Some(i) => i,
            None => {
                r.labels.push(name.to_string());
                r.labels.len() - 1
            }
        };
        r.current = idx.min(u16::MAX as usize) as u16;
    }

    /// Record one event, stamping it with the current scope. Drops the
    /// oldest event (and counts the drop) when the ring is full.
    pub fn record(&self, mut ev: TraceEvent) {
        let mut r = self.inner.borrow_mut();
        ev.scope = r.current;
        if r.events.len() >= r.capacity {
            r.events.pop_front();
            r.dropped += 1;
        }
        r.events.push_back(ev);
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.inner.borrow().events.len()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().events.is_empty()
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().dropped
    }

    /// Snapshot of the held events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.borrow().events.iter().copied().collect()
    }

    /// Resolve a scope index back to its label ("" if unknown).
    pub fn label(&self, scope: u16) -> String {
        self.inner
            .borrow()
            .labels
            .get(scope as usize)
            .cloned()
            .unwrap_or_default()
    }

    /// Serialise the whole ring as JSONL (one event per line, oldest
    /// first, trailing newline after each line).
    pub fn dump_jsonl(&self) -> String {
        let r = self.inner.borrow();
        let mut out = String::with_capacity(r.events.len() * 192);
        for ev in &r.events {
            out.push_str(&ev.to_json_line(&r.labels));
            out.push('\n');
        }
        out
    }

    /// Sum of each component across all held events, in the order
    /// (overhead, seek, head switch, rotation, transfer). Summing a
    /// complete trace reproduces the disk's cumulative busy breakdown.
    pub fn component_sums(&self) -> (u64, u64, u64, u64, u64) {
        let r = self.inner.borrow();
        let mut t = (0u64, 0u64, 0u64, 0u64, 0u64);
        for ev in &r.events {
            t.0 += ev.overhead_ns;
            t.1 += ev.seek_ns;
            t.2 += ev.head_switch_ns;
            t.3 += ev.rotation_ns;
            t.4 += ev.transfer_ns;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64) -> TraceEvent {
        TraceEvent {
            at_ns: at,
            kind: OpKind::Write,
            scope: 0,
            span: 0,
            lba: 8,
            sectors: 8,
            cyl: 1,
            track: 2,
            sector: 3,
            seek_cyls: 1,
            overhead_ns: 10,
            seek_ns: 20,
            head_switch_ns: 0,
            rotation_ns: 30,
            transfer_ns: 40,
        }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let t = Tracer::with_capacity(2);
        t.record(ev(1));
        t.record(ev(2));
        t.record(ev(3));
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.events()[0].at_ns, 2);
    }

    #[test]
    fn scopes_intern_and_stamp() {
        let t = Tracer::with_capacity(8);
        t.record(ev(1));
        t.set_scope("phase-a");
        t.record(ev(2));
        t.set_scope("phase-b");
        t.record(ev(3));
        t.set_scope("phase-a");
        t.record(ev(4));
        let evs = t.events();
        assert_eq!(evs[0].scope, 0);
        assert_eq!(evs[1].scope, 1);
        assert_eq!(evs[2].scope, 2);
        assert_eq!(evs[3].scope, 1, "re-set scope reuses its index");
        assert_eq!(t.label(1), "phase-a");
    }

    #[test]
    fn jsonl_lines_are_wellformed_and_deterministic() {
        let make = || {
            let t = Tracer::with_capacity(4);
            t.set_scope("s");
            t.record(ev(5));
            t.dump_jsonl()
        };
        let a = make();
        let b = make();
        assert_eq!(a, b, "identical traces must serialise identically");
        assert!(a.starts_with("{\"at\":5,\"kind\":\"write\",\"scope\":\"s\""));
        assert!(a.ends_with("}\n"));
        assert_eq!(a.matches('{').count(), a.matches('}').count());
    }

    #[test]
    fn component_sums_add_up() {
        let t = Tracer::with_capacity(8);
        t.record(ev(1));
        t.record(ev(2));
        let (o, s, h, r, x) = t.component_sums();
        assert_eq!((o, s, h, r, x), (20, 40, 0, 60, 80));
        assert_eq!(t.events()[0].total_ns(), 100);
    }
}
