//! Causal spans: attributing disk time to the operation that caused it.
//!
//! A [`SpanRecord`] is one node of a causal forest: it carries a stable id,
//! its parent's id (0 for roots), a [`SpanKind`], a static label, and
//! virtual-clock open/close stamps. Layers open a span on entry to an
//! interesting region (an FS op, a cache write-back, a compaction pass, a
//! recovery scan) and close it on exit; while a span is open, every disk
//! command the simulator services is attributed to the *innermost* open
//! span — its busy nanoseconds accrue to that span's `disk_ns` and the
//! matching [`TraceEvent`](crate::TraceEvent) is stamped with the span id.
//!
//! The handle follows the same enabled/disabled discipline as
//! [`Metrics`](crate::Metrics): a disabled [`Spans`] (the default) turns
//! every call into a no-op after one branch, so instrumented paths cost
//! nothing in ordinary runs and the simulation's event count is unchanged.
//!
//! Ids are assigned sequentially in open order and stamps come from the
//! virtual clock, so a span table of a deterministic run is itself
//! deterministic — byte-identical dumps across runs and thread widths.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;

/// What caused the disk activity a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// A file-system operation entry point (create, write, read, ...).
    FsOp,
    /// Cache write-back: eviction or an explicit flush/sync sweep.
    CacheFlush,
    /// Log machinery appending state (map commit, checkpoint, segment
    /// flush).
    LogAppend,
    /// Background cleaning/compaction work.
    Compaction,
    /// Mount-time recovery (checkpoint load, scan, audit).
    Recovery,
    /// A single disk command (the leaves of the forest; implicit — the
    /// simulator stamps events rather than opening a span per command).
    DiskCmd,
}

/// Every kind, in stable rollup order.
pub const ALL_KINDS: [SpanKind; 6] = [
    SpanKind::FsOp,
    SpanKind::CacheFlush,
    SpanKind::LogAppend,
    SpanKind::Compaction,
    SpanKind::Recovery,
    SpanKind::DiskCmd,
];

impl SpanKind {
    /// Stable lowercase name used in dumps and metric keys.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::FsOp => "fs_op",
            SpanKind::CacheFlush => "cache_flush",
            SpanKind::LogAppend => "log_append",
            SpanKind::Compaction => "compaction",
            SpanKind::Recovery => "recovery",
            SpanKind::DiskCmd => "disk_cmd",
        }
    }

    /// Metric counter accumulating disk busy time attributed to this kind.
    pub fn disk_ns_counter(self) -> &'static str {
        match self {
            SpanKind::FsOp => "span.fs_op.disk_ns",
            SpanKind::CacheFlush => "span.cache_flush.disk_ns",
            SpanKind::LogAppend => "span.log_append.disk_ns",
            SpanKind::Compaction => "span.compaction.disk_ns",
            SpanKind::Recovery => "span.recovery.disk_ns",
            SpanKind::DiskCmd => "span.disk_cmd.disk_ns",
        }
    }

    /// Metric counter for the number of disk commands attributed to this
    /// kind.
    pub fn disk_cmds_counter(self) -> &'static str {
        match self {
            SpanKind::FsOp => "span.fs_op.disk_cmds",
            SpanKind::CacheFlush => "span.cache_flush.disk_cmds",
            SpanKind::LogAppend => "span.log_append.disk_cmds",
            SpanKind::Compaction => "span.compaction.disk_cmds",
            SpanKind::Recovery => "span.recovery.disk_cmds",
            SpanKind::DiskCmd => "span.disk_cmd.disk_cmds",
        }
    }

    /// Is disk time of this kind *background* work — service the paper's
    /// cleaning-tax argument counts against eager writing rather than as
    /// foreground latency? Compaction is the cleaning tax proper; recovery
    /// is likewise off the foreground path.
    pub fn is_background(self) -> bool {
        matches!(self, SpanKind::Compaction | SpanKind::Recovery)
    }

    /// Parse a name produced by [`SpanKind::as_str`].
    pub fn from_str_name(s: &str) -> Option<Self> {
        ALL_KINDS.iter().copied().find(|k| k.as_str() == s)
    }
}

/// Metric counter for disk busy time serviced while *no* span was open.
///
/// Keeping the remainder explicit makes the per-kind counters a partition:
/// their sum plus this counter equals the disk's cumulative busy time
/// exactly — the invariant the attribution tests assert.
pub const UNATTRIBUTED_DISK_NS: &str = "span.unattributed.disk_ns";
/// Metric counter for disk commands serviced while no span was open.
pub const UNATTRIBUTED_DISK_CMDS: &str = "span.unattributed.disk_cmds";
/// Gauge: cleaning tax in parts-per-million — background attributed disk
/// ns (compaction + recovery) scaled by 1e6 over foreground disk ns
/// (everything else, including unattributed).
pub const CLEANING_TAX_PPM: &str = "span.cleaning_tax_ppm";

/// One node of the causal forest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Stable id (1-based; 0 is reserved for "no span").
    pub id: u32,
    /// Parent span id (0 for roots).
    pub parent: u32,
    /// What caused the activity under this span.
    pub kind: SpanKind,
    /// Static label naming the code site ("ufs.write", "vld.compact", ...).
    pub label: &'static str,
    /// Virtual-clock time the span was opened.
    pub open_ns: u64,
    /// Virtual-clock time the span was closed (meaningless until
    /// `closed`).
    pub close_ns: u64,
    /// Disk busy nanoseconds attributed directly to this span (innermost
    /// attribution; children's time is *not* included).
    pub disk_ns: u64,
    /// Disk commands attributed directly to this span.
    pub disk_cmds: u64,
    /// Has the span been closed? A crash (power cut) can leave spans open.
    pub closed: bool,
}

impl SpanRecord {
    /// Wall time the span covered (0 while still open).
    pub fn wall_ns(&self) -> u64 {
        if self.closed {
            self.close_ns.saturating_sub(self.open_ns)
        } else {
            0
        }
    }

    /// One JSONL line (no trailing newline). The `"parent"` key marks span
    /// records apart from trace-event lines in a mixed dump.
    fn json_line(&self) -> String {
        let mut s = String::with_capacity(160);
        let _ = write!(
            s,
            "{{\"span\":{},\"parent\":{},\"kind\":\"{}\",\"label\":\"{}\",\
             \"open_ns\":{},\"close_ns\":",
            self.id,
            self.parent,
            self.kind.as_str(),
            self.label,
            self.open_ns,
        );
        if self.closed {
            let _ = write!(s, "{}", self.close_ns);
        } else {
            s.push_str("null");
        }
        let _ = write!(
            s,
            ",\"disk_ns\":{},\"disk_cmds\":{}}}",
            self.disk_ns, self.disk_cmds
        );
        s
    }
}

#[derive(Debug)]
struct Table {
    records: Vec<SpanRecord>,
    /// Open spans, outermost first; the top is the attribution target.
    stack: Vec<u32>,
    /// Maximum records retained; further opens are counted, not stored.
    limit: usize,
    /// Spans not recorded because the table was full.
    dropped: u64,
    /// Disk busy time serviced while no span was open.
    unattributed_ns: u64,
    /// Disk commands serviced while no span was open.
    unattributed_cmds: u64,
}

/// A cheap cloneable handle to a causal-span table, or a no-op.
///
/// `Spans::default()` is disabled: every call returns after one branch.
/// [`Spans::enabled`] creates a live shared table; clones of an enabled
/// handle all feed the same table, so a span opened by the file system is
/// the attribution target for commands recorded by the disk below it.
#[derive(Debug, Clone, Default)]
pub struct Spans {
    inner: Option<Rc<RefCell<Table>>>,
}

/// Default bound on retained span records.
const DEFAULT_LIMIT: usize = 1 << 20;

impl Spans {
    /// A disabled handle: every call is a no-op.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A live handle with the default record limit.
    pub fn enabled() -> Self {
        Self::enabled_with_limit(DEFAULT_LIMIT)
    }

    /// A live handle retaining at most `limit` span records (clamped to at
    /// least 1). Opens past the limit still nest correctly for attribution
    /// purposes of *outer* spans but are not recorded; a counter reports
    /// the loss.
    pub fn enabled_with_limit(limit: usize) -> Self {
        Self {
            inner: Some(Rc::new(RefCell::new(Table {
                records: Vec::new(),
                stack: Vec::new(),
                limit: limit.max(1),
                dropped: 0,
                unattributed_ns: 0,
                unattributed_cmds: 0,
            }))),
        }
    }

    /// Does this handle record anything?
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a span under the currently innermost open span. Returns the
    /// new span's id, or 0 when disabled (or dropped at the limit) — 0 is
    /// always safe to pass to [`Spans::close`].
    pub fn open(&self, kind: SpanKind, label: &'static str, now_ns: u64) -> u32 {
        let Some(r) = &self.inner else { return 0 };
        let mut t = r.borrow_mut();
        if t.records.len() >= t.limit {
            t.dropped += 1;
            return 0;
        }
        let id = (t.records.len() + 1) as u32;
        let parent = t.stack.last().copied().unwrap_or(0);
        t.records.push(SpanRecord {
            id,
            parent,
            kind,
            label,
            open_ns: now_ns,
            close_ns: 0,
            disk_ns: 0,
            disk_cmds: 0,
            closed: false,
        });
        t.stack.push(id);
        id
    }

    /// Close a span by id. Tolerant: id 0, unknown ids and already-closed
    /// spans are ignored, and any spans opened under `id` and still open
    /// (abandoned by an early return or a crash) are closed with the same
    /// stamp so the stack stays consistent.
    pub fn close(&self, id: u32, now_ns: u64) {
        if id == 0 {
            return;
        }
        let Some(r) = &self.inner else { return };
        let mut t = r.borrow_mut();
        let Some(pos) = t.stack.iter().rposition(|&s| s == id) else {
            return;
        };
        while t.stack.len() > pos {
            let sid = t.stack.pop().expect("stack is non-empty above pos");
            let rec = &mut t.records[sid as usize - 1];
            rec.close_ns = now_ns;
            rec.closed = true;
        }
    }

    /// Close every open span with the given stamp. Used when a crash
    /// dismantles a stack mid-operation, so recovery spans on the remounted
    /// stack do not nest under a dead op.
    pub fn close_all(&self, now_ns: u64) {
        let Some(r) = &self.inner else { return };
        let mut t = r.borrow_mut();
        while let Some(sid) = t.stack.pop() {
            let rec = &mut t.records[sid as usize - 1];
            rec.close_ns = now_ns;
            rec.closed = true;
        }
    }

    /// Id of the innermost open span (0 if none or disabled).
    pub fn current(&self) -> u32 {
        self.inner
            .as_ref()
            .and_then(|r| r.borrow().stack.last().copied())
            .unwrap_or(0)
    }

    /// Attribute one disk command's busy time to the innermost open span.
    /// Returns the span id to stamp onto the trace event and the kind of
    /// the owning span (`None` when no span is open — the time accrues to
    /// the unattributed remainder — or when disabled).
    pub fn attribute(&self, busy_ns: u64) -> (u32, Option<SpanKind>) {
        let Some(r) = &self.inner else {
            return (0, None);
        };
        let mut t = r.borrow_mut();
        match t.stack.last().copied() {
            Some(sid) => {
                let rec = &mut t.records[sid as usize - 1];
                rec.disk_ns += busy_ns;
                rec.disk_cmds += 1;
                (sid, Some(rec.kind))
            }
            None => {
                t.unattributed_ns += busy_ns;
                t.unattributed_cmds += 1;
                (0, None)
            }
        }
    }

    /// Number of span records held.
    pub fn len(&self) -> usize {
        self.inner.as_ref().map_or(0, |r| r.borrow().records.len())
    }

    /// Is the table empty (or disabled)?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans dropped because the table hit its limit.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |r| r.borrow().dropped)
    }

    /// Snapshot of all span records, id order.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |r| r.borrow().records.clone())
    }

    /// Disk busy time serviced while no span was open.
    pub fn unattributed_ns(&self) -> u64 {
        self.inner.as_ref().map_or(0, |r| r.borrow().unattributed_ns)
    }

    /// Disk commands serviced while no span was open.
    pub fn unattributed_cmds(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |r| r.borrow().unattributed_cmds)
    }

    /// Directly attributed disk ns per kind, in [`ALL_KINDS`] order.
    pub fn kind_sums_ns(&self) -> [u64; 6] {
        let mut sums = [0u64; 6];
        let Some(r) = &self.inner else { return sums };
        for rec in &r.borrow().records {
            let i = ALL_KINDS
                .iter()
                .position(|k| *k == rec.kind)
                .expect("every kind is in ALL_KINDS");
            sums[i] += rec.disk_ns;
        }
        sums
    }

    /// Total disk ns attributed to any span plus the unattributed
    /// remainder — equals the disk's cumulative busy time when every
    /// command was recorded through [`Spans::attribute`].
    pub fn total_ns(&self) -> u64 {
        self.kind_sums_ns().iter().sum::<u64>() + self.unattributed_ns()
    }

    /// Disk ns that is *background* work: attributed to a span whose
    /// ancestor chain (itself included) contains a background kind
    /// ([`SpanKind::is_background`]). Subtree inheritance matters — a map
    /// append performed on behalf of a compaction pass is cleaning tax even
    /// though its own kind is `LogAppend`.
    pub fn background_ns(&self) -> u64 {
        let Some(r) = &self.inner else { return 0 };
        let t = r.borrow();
        // Parents always open before children, so parent ids are smaller
        // than child ids and one forward pass settles inheritance.
        let mut bg = vec![false; t.records.len()];
        let mut sum = 0u64;
        for (i, rec) in t.records.iter().enumerate() {
            let inherited = rec.parent != 0 && bg[rec.parent as usize - 1];
            bg[i] = inherited || rec.kind.is_background();
            if bg[i] {
                sum += rec.disk_ns;
            }
        }
        sum
    }

    /// Disk ns that is foreground work (everything not
    /// [`Spans::background_ns`], including the unattributed remainder).
    pub fn foreground_ns(&self) -> u64 {
        self.total_ns() - self.background_ns()
    }

    /// Serialise the span table as JSONL, id order, one record per line
    /// (each line carries a `"parent"` key, distinguishing it from trace
    /// events in a mixed dump).
    pub fn dump_jsonl(&self) -> String {
        let Some(r) = &self.inner else {
            return String::new();
        };
        let t = r.borrow();
        let mut out = String::with_capacity(t.records.len() * 160);
        for rec in &t.records {
            out.push_str(&rec.json_line());
            out.push('\n');
        }
        out
    }
}

/// A bounded black box for failure harnesses: the last N disk events of a
/// stack plus the full span table, dumped together when a divergence or a
/// crash-invariant failure is found so the report shows the causal disk
/// history that led to it.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    /// The event ring (bounded; oldest events are dropped first).
    pub tracer: crate::Tracer,
    /// The span table the events are stamped against.
    pub spans: Spans,
}

impl FlightRecorder {
    /// A recorder keeping the most recent `events` disk events.
    pub fn with_capacity(events: usize) -> Self {
        Self {
            tracer: crate::Tracer::with_capacity(events),
            spans: Spans::enabled(),
        }
    }

    /// Dump span records then events as one JSONL document. Span lines
    /// carry a `"parent"` key; event lines carry an `"at"` key.
    pub fn dump(&self) -> String {
        let mut out = self.spans.dump_jsonl();
        out.push_str(&self.tracer.dump_jsonl());
        out
    }

    /// Events currently held (the ring may have dropped older ones).
    pub fn len(&self) -> usize {
        self.tracer.len()
    }

    /// Is the recorder empty?
    pub fn is_empty(&self) -> bool {
        self.tracer.is_empty() && self.spans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_noop() {
        let s = Spans::disabled();
        assert!(!s.is_enabled());
        assert_eq!(s.open(SpanKind::FsOp, "x", 1), 0);
        s.close(0, 2);
        s.close_all(3);
        assert_eq!(s.attribute(100), (0, None));
        assert_eq!(s.current(), 0);
        assert_eq!(s.total_ns(), 0);
        assert!(s.records().is_empty());
        assert!(s.dump_jsonl().is_empty());
    }

    #[test]
    fn nesting_and_attribution() {
        let s = Spans::enabled();
        let a = s.open(SpanKind::FsOp, "ufs.write", 10);
        assert_eq!(a, 1);
        s.attribute(100); // goes to a
        let b = s.open(SpanKind::CacheFlush, "ufs.evict", 20);
        assert_eq!(b, 2);
        assert_eq!(s.current(), b);
        s.attribute(50); // goes to b (innermost)
        s.close(b, 30);
        s.attribute(7); // back to a
        s.close(a, 40);
        s.attribute(1); // no span open -> unattributed
        let recs = s.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].parent, 0);
        assert_eq!(recs[1].parent, a);
        assert_eq!(recs[0].disk_ns, 107);
        assert_eq!(recs[1].disk_ns, 50);
        assert_eq!(recs[0].wall_ns(), 30);
        assert_eq!(recs[1].wall_ns(), 10);
        assert_eq!(s.unattributed_ns(), 1);
        assert_eq!(s.unattributed_cmds(), 1);
        assert_eq!(s.total_ns(), 158);
        let sums = s.kind_sums_ns();
        assert_eq!(sums[0], 107); // FsOp
        assert_eq!(sums[1], 50); // CacheFlush
    }

    #[test]
    fn close_is_tolerant_and_closes_abandoned_children() {
        let s = Spans::enabled();
        let a = s.open(SpanKind::FsOp, "a", 1);
        let b = s.open(SpanKind::LogAppend, "b", 2);
        // Closing the outer span also closes the abandoned inner one.
        s.close(a, 9);
        let recs = s.records();
        assert!(recs[0].closed && recs[1].closed);
        assert_eq!(recs[1].close_ns, 9);
        // Double close and unknown ids are no-ops.
        s.close(a, 99);
        s.close(b, 99);
        s.close(77, 99);
        assert_eq!(s.records()[0].close_ns, 9);
        assert_eq!(s.current(), 0);
    }

    #[test]
    fn background_rollup_inherits_down_the_tree() {
        let s = Spans::enabled();
        let op = s.open(SpanKind::FsOp, "op", 1);
        s.attribute(100); // foreground
        let la = s.open(SpanKind::LogAppend, "map", 2);
        s.attribute(10); // foreground (log append on behalf of an op)
        s.close(la, 3);
        s.close(op, 4);
        let c = s.open(SpanKind::Compaction, "clean", 5);
        s.attribute(200); // background
        let la2 = s.open(SpanKind::LogAppend, "map", 6);
        s.attribute(20); // background by inheritance
        s.close(la2, 7);
        s.close(c, 8);
        s.attribute(1); // unattributed -> foreground
        assert_eq!(s.background_ns(), 220);
        assert_eq!(s.foreground_ns(), 111);
        assert_eq!(s.total_ns(), 331);
    }

    #[test]
    fn close_all_sweeps_open_spans() {
        let s = Spans::enabled();
        s.open(SpanKind::FsOp, "a", 1);
        s.open(SpanKind::Compaction, "b", 2);
        s.close_all(5);
        assert_eq!(s.current(), 0);
        assert!(s.records().iter().all(|r| r.closed && r.close_ns == 5));
    }

    #[test]
    fn limit_drops_and_counts() {
        let s = Spans::enabled_with_limit(1);
        let a = s.open(SpanKind::FsOp, "a", 1);
        let b = s.open(SpanKind::FsOp, "b", 2);
        assert_eq!(a, 1);
        assert_eq!(b, 0, "over-limit span is dropped");
        assert_eq!(s.dropped(), 1);
        // Attribution falls through to the recorded outer span.
        s.attribute(10);
        assert_eq!(s.records()[0].disk_ns, 10);
        s.close(b, 3); // no-op
        s.close(a, 4);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn jsonl_shape_and_determinism() {
        let make = || {
            let s = Spans::enabled();
            let a = s.open(SpanKind::FsOp, "ufs.write", 10);
            let b = s.open(SpanKind::LogAppend, "vlog.map_append", 12);
            s.attribute(40);
            s.close(b, 20);
            s.close(a, 25);
            s.open(SpanKind::Compaction, "vld.compact", 30); // left open
            s.dump_jsonl()
        };
        let a = make();
        assert_eq!(a, make(), "identical span tables serialise identically");
        let lines: Vec<&str> = a.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"span\":1,\"parent\":0,\"kind\":\"fs_op\""));
        assert!(lines[1].contains("\"parent\":1"));
        assert!(lines[1].contains("\"disk_ns\":40"));
        assert!(lines[2].contains("\"close_ns\":null"));
        for l in &lines {
            assert_eq!(l.matches('{').count(), l.matches('}').count());
        }
    }

    #[test]
    fn kind_names_round_trip() {
        for k in ALL_KINDS {
            assert_eq!(SpanKind::from_str_name(k.as_str()), Some(k));
            assert!(k.disk_ns_counter().contains(k.as_str()));
            assert!(k.disk_cmds_counter().contains(k.as_str()));
        }
        assert!(SpanKind::Compaction.is_background());
        assert!(SpanKind::Recovery.is_background());
        assert!(!SpanKind::FsOp.is_background());
    }

    #[test]
    fn flight_recorder_bounds_events() {
        let fr = FlightRecorder::with_capacity(2);
        let sp = fr.spans.open(SpanKind::FsOp, "op", 1);
        for at in 1..=4u64 {
            fr.tracer.record(crate::TraceEvent {
                at_ns: at,
                kind: crate::OpKind::Write,
                scope: 0,
                span: sp,
                lba: 0,
                sectors: 8,
                cyl: 0,
                track: 0,
                sector: 0,
                seek_cyls: 0,
                overhead_ns: 1,
                seek_ns: 0,
                head_switch_ns: 0,
                rotation_ns: 0,
                transfer_ns: 0,
            });
        }
        fr.spans.close(sp, 5);
        assert_eq!(fr.len(), 2, "ring keeps only the most recent events");
        let d = fr.dump();
        assert!(d.lines().next().unwrap().contains("\"parent\":0"));
        assert!(d.contains("\"span\":1"));
        assert!(!fr.is_empty());
    }
}
