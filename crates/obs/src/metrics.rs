//! The metrics registry: counters, gauges, and log-bucketed histograms.
//!
//! A [`Metrics`] handle is either *enabled* (backed by a shared registry)
//! or *disabled* (the default). Disabled handles turn every recording call
//! into a no-op after a single branch, so instrumented hot paths cost
//! nothing in ordinary runs — the property the byte-identical-output and
//! wall-clock acceptance checks depend on.
//!
//! Histograms use power-of-two buckets indexed by bit length (value 0 goes
//! to bucket 0; otherwise bucket `64 - leading_zeros(v)`), which is cheap,
//! branch-free, and plenty for latency distributions spanning nanoseconds
//! to seconds. Quantiles report the upper bound of the containing bucket,
//! clamped to the observed maximum.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

/// Number of histogram buckets: one for zero plus one per bit length.
const BUCKETS: usize = 65;

/// A log-bucketed (power-of-two) histogram of `u64` samples.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Bucket index for a sample: 0 for 0, else its bit length.
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (64 - v.leading_zeros()) as usize
        }
    }

    /// Inclusive upper bound of a bucket (`2^i - 1` for bucket `i`).
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Record one sample.
    pub fn observe(&mut self, v: u64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (0 if empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Approximate quantile `q` in [0, 1]: the upper bound of the first
    /// bucket whose cumulative count reaches `ceil(q * count)`, clamped to
    /// the observed maximum. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Non-empty buckets as `(upper_bound, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_upper_bound(i), c))
            .collect()
    }
}

#[derive(Debug, Default)]
struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, i64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

/// A point-in-time copy of every metric in a registry, for export.
///
/// Maps are ordered by name, so serialisation is deterministic.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Last-set gauge values by name.
    pub gauges: BTreeMap<&'static str, i64>,
    /// Histograms by name.
    pub histograms: BTreeMap<&'static str, Histogram>,
}

/// A cheap cloneable handle to a metrics registry, or a no-op.
///
/// `Metrics::default()` is disabled: recording methods return after one
/// branch. [`Metrics::enabled`] creates a live shared registry; clones of
/// an enabled handle all feed the same registry.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    inner: Option<Rc<RefCell<Registry>>>,
}

impl Metrics {
    /// A disabled handle: every recording call is a no-op.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A live handle backed by a fresh registry.
    pub fn enabled() -> Self {
        Self {
            inner: Some(Rc::new(RefCell::new(Registry::default()))),
        }
    }

    /// Does this handle record anything?
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Add `delta` to the counter `name` (creating it at 0).
    pub fn add(&self, name: &'static str, delta: u64) {
        if let Some(r) = &self.inner {
            *r.borrow_mut().counters.entry(name).or_insert(0) += delta;
        }
    }

    /// Increment the counter `name` by one.
    pub fn inc(&self, name: &'static str) {
        self.add(name, 1);
    }

    /// Set the gauge `name` to `value`.
    pub fn gauge(&self, name: &'static str, value: i64) {
        if let Some(r) = &self.inner {
            r.borrow_mut().gauges.insert(name, value);
        }
    }

    /// Record `value` into the histogram `name` (creating it empty).
    pub fn observe(&self, name: &'static str, value: u64) {
        if let Some(r) = &self.inner {
            r.borrow_mut()
                .histograms
                .entry(name)
                .or_default()
                .observe(value);
        }
    }

    /// Current value of a counter (0 if absent or disabled).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner
            .as_ref()
            .and_then(|r| r.borrow().counters.get(name).copied())
            .unwrap_or(0)
    }

    /// Current value of a gauge (`None` if absent or disabled).
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        self.inner
            .as_ref()
            .and_then(|r| r.borrow().gauges.get(name).copied())
    }

    /// Copy of a histogram (`None` if absent or disabled).
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner
            .as_ref()
            .and_then(|r| r.borrow().histograms.get(name).cloned())
    }

    /// Point-in-time copy of everything (empty if disabled).
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            None => MetricsSnapshot::default(),
            Some(r) => {
                let r = r.borrow();
                MetricsSnapshot {
                    counters: r.counters.clone(),
                    gauges: r.gauges.clone(),
                    histograms: r.histograms.clone(),
                }
            }
        }
    }

    /// Human-readable summary: counters, gauges, then histogram quantiles.
    pub fn summary_table(&self) -> String {
        self.snapshot().summary_table()
    }

    /// Flat JSON object with deterministic key order.
    pub fn to_json(&self) -> String {
        self.snapshot().to_json()
    }
}

impl MetricsSnapshot {
    /// True when no metric of any kind was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Human-readable summary: counters, gauges, then histogram quantiles.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<40} {v:>14}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<40} {v:>14}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms (count / mean / p50 / p90 / p99 / max):\n");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<40} {:>10} {:>12} {:>12} {:>12} {:>12} {:>12}",
                    h.count(),
                    h.mean(),
                    h.p50(),
                    h.p90(),
                    h.p99(),
                    h.max(),
                );
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }

    /// Flat JSON object: `counters.*` and `gauges.*` scalars plus
    /// `hist.<name>.{count,sum,mean,p50,p90,p99,max}` per histogram. All
    /// flat keys are emitted in one globally sorted order, so output is
    /// fully deterministic and diffable regardless of which group a key
    /// belongs to.
    pub fn to_json(&self) -> String {
        let mut parts: Vec<(String, String)> = Vec::new();
        for (name, v) in &self.counters {
            parts.push((format!("counters.{name}"), v.to_string()));
        }
        for (name, v) in &self.gauges {
            parts.push((format!("gauges.{name}"), v.to_string()));
        }
        for (name, h) in &self.histograms {
            for (sub, v) in [
                ("count", h.count()),
                ("sum", h.sum()),
                ("mean", h.mean()),
                ("p50", h.p50()),
                ("p90", h.p90()),
                ("p99", h.p99()),
                ("max", h.max()),
            ] {
                parts.push((format!("hist.{name}.{sub}"), v.to_string()));
            }
        }
        parts.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = String::from("{\n");
        let body: Vec<String> = parts
            .into_iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        out.push_str(&body.join(",\n"));
        out.push_str("\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        // Zero gets its own bucket.
        assert_eq!(Histogram::bucket_index(0), 0);
        // Powers of two open a new bucket; one less stays in the previous.
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(255), 8);
        assert_eq!(Histogram::bucket_index(256), 9);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        // Upper bounds are 2^i - 1 and saturate at the top.
        assert_eq!(Histogram::bucket_upper_bound(0), 0);
        assert_eq!(Histogram::bucket_upper_bound(1), 1);
        assert_eq!(Histogram::bucket_upper_bound(8), 255);
        assert_eq!(Histogram::bucket_upper_bound(64), u64::MAX);
        // index/upper_bound are mutually consistent: every sample is <=
        // the upper bound of its bucket and > the previous bucket's bound.
        for v in [1u64, 2, 3, 7, 8, 1023, 1024, 1 << 40] {
            let i = Histogram::bucket_index(v);
            assert!(v <= Histogram::bucket_upper_bound(i));
            assert!(v > Histogram::bucket_upper_bound(i - 1));
        }
    }

    #[test]
    fn quantiles_clamp_to_max() {
        let mut h = Histogram::default();
        for v in [100u64, 200, 300, 400] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1000);
        assert_eq!(h.mean(), 250);
        assert_eq!(h.max(), 400);
        // All samples land in buckets 7 (64..=127) and 9 (256..=511); the
        // p99 bucket bound (511) is clamped to the observed max.
        assert_eq!(h.p99(), 400);
        assert!(h.p50() <= h.p90());
        assert!(h.p90() <= h.p99());
    }

    #[test]
    fn quantile_picks_correct_bucket() {
        let mut h = Histogram::default();
        // 9 small samples, 1 large: p50 must be in the small bucket.
        for _ in 0..9 {
            h.observe(10);
        }
        h.observe(1_000_000);
        assert_eq!(h.p50(), Histogram::bucket_upper_bound(4)); // 10 -> bucket 4, bound 15
        assert_eq!(h.p99(), 1_000_000); // clamped to max
        assert_eq!(h.quantile(0.0), Histogram::bucket_upper_bound(4));
    }

    #[test]
    fn disabled_is_noop() {
        let m = Metrics::disabled();
        m.inc("x");
        m.add("x", 10);
        m.gauge("g", 5);
        m.observe("h", 42);
        assert!(!m.is_enabled());
        assert_eq!(m.counter_value("x"), 0);
        assert_eq!(m.gauge_value("g"), None);
        assert!(m.histogram("h").is_none());
        assert!(m.snapshot().is_empty());
    }

    #[test]
    fn enabled_records_and_shares() {
        let m = Metrics::enabled();
        let m2 = m.clone();
        m.inc("ops");
        m2.add("ops", 2);
        m.gauge("depth", -3);
        m.observe("lat", 7);
        m2.observe("lat", 9);
        assert_eq!(m.counter_value("ops"), 3);
        assert_eq!(m.gauge_value("depth"), Some(-3));
        let h = m.histogram("lat").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 16);
    }

    #[test]
    fn json_shape_is_deterministic() {
        let m = Metrics::enabled();
        m.add("b", 2);
        m.add("a", 1);
        m.gauge("g", 1);
        m.observe("lat", 4);
        let j = m.to_json();
        let j2 = m.to_json();
        assert_eq!(j, j2);
        // BTreeMap ordering: "a" before "b" regardless of insertion order.
        let ia = j.find("\"counters.a\"").unwrap();
        let ib = j.find("\"counters.b\"").unwrap();
        assert!(ia < ib);
        assert!(j.contains("\"hist.lat.count\": 1"));
        assert!(j.trim_start().starts_with('{'));
        assert!(j.trim_end().ends_with('}'));
    }

    #[test]
    fn json_keys_are_globally_sorted() {
        let m = Metrics::enabled();
        m.add("z", 1);
        m.gauge("a", 2);
        m.observe("mid", 3);
        m.observe("aaa", 4);
        let j = m.to_json();
        let keys: Vec<&str> = j
            .lines()
            .filter_map(|l| {
                let l = l.trim().trim_start_matches('\"');
                l.split('\"').next().filter(|k| k.contains('.'))
            })
            .collect();
        assert!(!keys.is_empty());
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "flat keys must be emitted in sorted order");
        // Histogram subkeys sort alphabetically within their histogram.
        let ic = j.find("\"hist.aaa.count\"").unwrap();
        let im = j.find("\"hist.aaa.max\"").unwrap();
        let is_ = j.find("\"hist.aaa.sum\"").unwrap();
        assert!(ic < im && im < is_);
    }
}
