#![warn(missing_docs)]
//! # obs — simulation-time observability
//!
//! A std-only tracing and metrics layer keyed to the simulator's virtual
//! clock. The paper's central claims are *latency decompositions* — eager
//! writing wins because seek + rotation collapse to near-zero (Figs. 2/6/8,
//! Table 2) — so the instrumentation here is built around the same
//! decomposition: every traced disk operation carries its
//! overhead / seek / head-switch / rotation / transfer split, and the
//! metric histograms are log-bucketed latency distributions.
//!
//! Two first-class objects, both cheap cloneable handles:
//!
//! * [`Tracer`] — a bounded ring buffer of [`TraceEvent`]s. Producers hold
//!   an `Option<Tracer>`; when it is `None` the cost of tracing is a single
//!   branch. Events are stamped with the virtual-clock completion time, so
//!   a trace of a deterministic simulation is itself deterministic —
//!   byte-identical across runs.
//! * [`Metrics`] — a registry of counters, gauges and power-of-two
//!   log-bucketed histograms. A disabled handle (the default) makes every
//!   recording call a no-op after one branch, so instrumented hot paths pay
//!   nothing in ordinary runs.
//!
//! On top of these, [`Spans`] builds a causal forest attributing each disk
//! command's busy time to the file-system operation (or background
//! compaction/recovery pass) that caused it, and [`FlightRecorder`] pairs a
//! bounded event ring with a span table as a black box for the failure
//! harnesses. Both follow the same disabled-by-default, one-branch-cost
//! discipline.
//!
//! Exporters are deliberately dependency-free (the workspace builds
//! offline): JSONL for traces, a flat hand-rolled JSON object and a
//! human-readable table for metrics.
//!
//! This crate knows nothing about the simulator: times are plain `u64`
//! nanoseconds, positions are plain integers. `disksim` depends on `obs`,
//! never the reverse.

pub mod metrics;
pub mod span;
pub mod trace;

pub use metrics::{Histogram, Metrics, MetricsSnapshot};
pub use span::{FlightRecorder, SpanKind, SpanRecord, Spans};
pub use trace::{OpKind, TraceEvent, Tracer};
